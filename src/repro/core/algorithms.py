"""Force algorithms behind a common interface.

Each algorithm implements the per-timestep force pipeline with the
paper's step structure, charging work to the context's step counters:

==============  =====================================================
step name       paper step
==============  =====================================================
bounding_box    CALCULATEBOUNDINGBOX (Alg. 3 transform_reduce)
sort            HILBERTSORT (BVH only, Alg. 7)
build_tree      BUILDTREE / BUILDTREEACCUMULATEMASS
multipoles      CALCULATEMULTIPOLES (octree only; fused for BVH)
force           CALCULATEFORCE
update_position UPDATEPOSITION (charged by the Simulation)
==============  =====================================================
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.config import SimulationConfig
from repro.errors import ForwardProgressError
from repro.geometry.aabb import AABB, compute_bounding_box
from repro.physics.bodies import BodySystem
from repro.stdpar.algorithms import transform_reduce
from repro.stdpar.context import ExecutionContext
from repro.stdpar.policy import par, par_unseq
from repro.stdpar.progress import ForwardProgress


class ForceAlgorithm(ABC):
    """One of the paper's four evaluated algorithms."""

    #: Registry name (matches the figures' legend).
    name: str = ""
    #: Asymptotic complexity class, for reporting.
    complexity: str = ""
    #: Strongest forward-progress guarantee any phase requires.
    required_progress: ForwardProgress = ForwardProgress.WEAKLY_PARALLEL
    #: Does any phase use atomics (and therefore the ``par`` policy)?
    uses_atomics: bool = False

    def supports(self, device, config: SimulationConfig) -> bool:
        """Can this algorithm run on *device* at all? (Paper Fig. 6:
        Octree only runs on CPUs and NVIDIA GPUs.)"""
        if device.progress.satisfies(self.required_progress):
            return True
        return self.allows_unsafe_relax and config.unsafe_relax_policy

    #: Whether the paper's par→par_unseq UB workaround applies.
    allows_unsafe_relax: bool = False

    @abstractmethod
    def accelerations(
        self,
        system: BodySystem,
        config: SimulationConfig,
        ctx: ExecutionContext,
        cache: dict | None = None,
    ) -> np.ndarray:
        """Accelerations of all bodies at the current positions.

        *cache*, when provided by the caller (one dict per simulation),
        lets tree algorithms reuse structure across timesteps
        (``config.tree_reuse_steps``); stateless algorithms ignore it.
        """

    # ------------------------------------------------------------------
    def _bounding_box(self, system: BodySystem, ctx: ExecutionContext) -> AABB:
        """CALCULATEBOUNDINGBOX as a stdpar transform_reduce (Alg. 3)."""
        with ctx.step("bounding_box"):
            x = system.x
            return transform_reduce(
                par_unseq,
                system.n,
                AABB.empty(system.dim),
                lambda a, b: a.merge(b),
                lambda i: AABB(x[i], x[i]),
                ctx,
                batch=lambda _idx: compute_bounding_box(x),
                flops_per_item=2.0 * system.dim,
                bytes_per_item=8.0 * system.dim,
            )


class AllPairs(ForceAlgorithm):
    """Classical O(N²), ``par_unseq`` over bodies."""

    name = "all-pairs"
    complexity = "O(N^2)"
    required_progress = ForwardProgress.WEAKLY_PARALLEL
    uses_atomics = False

    def accelerations(self, system, config, ctx, cache=None):
        from repro.allpairs.classic import allpairs_accelerations

        with ctx.step("force"):
            return allpairs_accelerations(system.x, system.m, config.gravity, ctx=ctx)


class AllPairsCol(ForceAlgorithm):
    """O(N²) over pairs with atomic accumulation, ``par``."""

    name = "all-pairs-col"
    complexity = "O(N^2)"
    required_progress = ForwardProgress.PARALLEL
    uses_atomics = True
    allows_unsafe_relax = True

    def accelerations(self, system, config, ctx, cache=None):
        from repro.allpairs.collision import allpairs_col_accelerations

        with ctx.step("force"):
            if config.unsafe_relax_policy and not ctx.device.progress.satisfies(
                ForwardProgress.PARALLEL
            ):
                # The paper's AMD/Intel workaround: run the
                # value-equivalent batch under par_unseq semantics.
                from repro.physics.gravity import pairwise_accelerations

                acc = pairwise_accelerations(system.x, system.m, config.gravity)
                self._account_relaxed(system, ctx)
                return acc
            return allpairs_col_accelerations(system.x, system.m, config.gravity, ctx=ctx)

    @staticmethod
    def _account_relaxed(system, ctx):
        from repro.physics.gravity import FLOPS_PER_INTERACTION, SPECIAL_PER_INTERACTION

        n, dim = system.n, system.dim
        n_pairs = n * (n - 1) / 2
        ctx.counters.add(
            flops=n_pairs * (FLOPS_PER_INTERACTION * 0.5 + 2.0 * dim),
            special_flops=n_pairs * SPECIAL_PER_INTERACTION * 0.5,
            atomic_ops=2.0 * dim * n_pairs,
            loop_iterations=n_pairs,
            kernel_launches=1.0,
            bytes_read=(dim + 1) * 8.0 * n,
            bytes_written=dim * 8.0 * n,
        )


class OctreeAlgorithm(ForceAlgorithm):
    """Concurrent Octree Barnes-Hut (paper Section IV-A)."""

    name = "octree"
    complexity = "O(N log N)"
    required_progress = ForwardProgress.PARALLEL  # build + multipoles use par
    uses_atomics = True

    def accelerations(self, system, config, ctx, cache=None):
        from repro.octree.build_concurrent import build_octree_concurrent
        from repro.octree.build_vectorized import build_octree_vectorized
        from repro.octree.force import (
            octree_accelerations,
            octree_accelerations_dual,
            octree_accelerations_grouped,
        )
        from repro.octree.multipoles import (
            compute_multipoles_concurrent,
            compute_multipoles_vectorized,
        )

        if not ctx.device.progress.satisfies(ForwardProgress.PARALLEL):
            if ctx.on_progress_violation == "raise":
                raise ForwardProgressError(
                    f"Concurrent Octree requires parallel forward progress; "
                    f"device {ctx.device.name!r} provides only "
                    f"{ctx.device.progress.name} (paper Section V-B: hangs)"
                )
        def build(box):
            if ctx.backend == "reference":
                return build_octree_concurrent(
                    system.x, bits=config.bits, box=box, ctx=ctx
                )
            return build_octree_vectorized(
                system.x, bits=config.bits, box=box, ctx=ctx
            )

        maint = None
        if config.tree_update != "rebuild":
            from repro.maintenance.maintainer import get_maintainer

            maint = get_maintainer(cache, config, ctx)
            pool = maint.maintain_octree(system, self, build)
            entry = maint.entry
        else:
            entry = _cache_entry(cache, "octree", config, system, ctx)
            pool = None if entry is None else entry["structure"]
            if pool is None:
                box = self._bounding_box(system, ctx)
                with ctx.step("build_tree"):
                    pool = build(box)
                entry = _store_structure(cache, "octree", pool, config, system)
        if not _moments_ready(entry):
            with ctx.step("multipoles"):
                if ctx.backend == "reference":
                    compute_multipoles_concurrent(pool, system.x, system.m, ctx,
                                                  order=config.multipole_order)
                else:
                    compute_multipoles_vectorized(pool, system.x, system.m, ctx,
                                                  order=config.multipole_order)
            _mark_moments_ready(entry)
        with ctx.step("force"):
            if config.traversal == "dual":
                acc = octree_accelerations_dual(
                    pool, system.x, system.m, config.gravity,
                    theta=config.theta, group_size=config.group_size,
                    cc_mac=config.cc_mac,
                    expansion_order=config.expansion_order,
                    ctx=ctx, simt_width=config.simt_width, cache=entry,
                    mac_margin=maint.mac_margin if maint is not None else 0.0,
                    eval_mode=config.eval_mode,
                )
            elif config.traversal == "grouped":
                acc = octree_accelerations_grouped(
                    pool, system.x, system.m, config.gravity,
                    theta=config.theta, group_size=config.group_size,
                    ctx=ctx, simt_width=config.simt_width, cache=entry,
                    mac_margin=maint.mac_margin if maint is not None else 0.0,
                    eval_mode=config.eval_mode,
                )
            else:
                acc = octree_accelerations(
                    pool, system.x, system.m, config.gravity,
                    theta=config.theta, ctx=ctx, simt_width=config.simt_width,
                )
        if maint is not None:
            maint.finish_step(system.x)
        return acc


class BVHAlgorithm(ForceAlgorithm):
    """Hilbert-sorted balanced BVH (paper Section IV-B)."""

    name = "bvh"
    complexity = "O(N log N)"
    required_progress = ForwardProgress.WEAKLY_PARALLEL  # par_unseq only
    uses_atomics = False

    def accelerations(self, system, config, ctx, cache=None):
        from repro.bvh.build import assemble_bvh, hilbert_sort_permutation
        from repro.bvh.force import (
            bvh_accelerations,
            bvh_accelerations_dual,
            bvh_accelerations_grouped,
        )

        maint = None
        if config.tree_update != "rebuild":
            from repro.maintenance.maintainer import get_maintainer

            maint = get_maintainer(cache, config, ctx)
            bvh = maint.maintain_bvh(system, self)
            entry = maint.entry
        else:
            entry = _cache_entry(cache, "bvh", config, system, ctx)
            if entry is not None:
                perm, box = entry["structure"]
            else:
                box = self._bounding_box(system, ctx)
                # HILBERTSORT and the fused build are separate steps so
                # Fig. 8's component breakdown can be reproduced.
                with ctx.step("sort"):
                    perm = hilbert_sort_permutation(
                        system.x, box, bits=config.bits, ctx=ctx, curve=config.curve
                    )
                entry = _store_structure(cache, "bvh", (perm, box), config, system)
            # Content-addressed shared entries were built at bit-identical
            # (x, m): the assembled tree itself is reusable, not just the
            # sort permutation.
            bvh = (entry.get("bvh")
                   if entry is not None and entry.get("exact") else None)
            if bvh is None:
                with ctx.step("build_tree"):
                    bvh = assemble_bvh(system.x, system.m, perm, box, ctx=ctx,
                                       order=config.multipole_order)
                if entry is not None and entry.get("exact"):
                    entry["bvh"] = bvh
        with ctx.step("force"):
            if config.traversal == "dual":
                acc = bvh_accelerations_dual(
                    bvh, config.gravity,
                    theta=config.theta, group_size=config.group_size,
                    cc_mac=config.cc_mac,
                    expansion_order=config.expansion_order,
                    ctx=ctx, simt_width=config.simt_width, cache=entry,
                    mac_margin=maint.mac_margin if maint is not None else 0.0,
                    eval_mode=config.eval_mode,
                )
            elif config.traversal == "grouped":
                acc = bvh_accelerations_grouped(
                    bvh, config.gravity,
                    theta=config.theta, group_size=config.group_size,
                    ctx=ctx, simt_width=config.simt_width, cache=entry,
                    mac_margin=maint.mac_margin if maint is not None else 0.0,
                    eval_mode=config.eval_mode,
                )
            else:
                acc = bvh_accelerations(
                    bvh, config.gravity,
                    theta=config.theta, ctx=ctx, simt_width=config.simt_width,
                )
        if maint is not None:
            maint.finish_step(system.x)
        return acc


class TwoStageOctreeAlgorithm(ForceAlgorithm):
    """Two-stage octree (Burtscher-Pingali [29] via Thüring et al. [22]).

    The comparator the paper validates against: a single work-group
    serializes the contended top of the tree, then independent subtrees
    build in parallel.  No global locks, so — unlike the Concurrent
    Octree — it runs under weakly parallel forward progress on *any*
    GPU, paying for that portability with the serial first stage.
    """

    name = "octree-2stage"
    complexity = "O(N log N)"
    required_progress = ForwardProgress.WEAKLY_PARALLEL
    uses_atomics = False  # work-group-local synchronization only

    def accelerations(self, system, config, ctx, cache=None):
        from repro.octree.build_twostage import build_octree_twostage
        from repro.octree.force import (
            octree_accelerations,
            octree_accelerations_dual,
            octree_accelerations_grouped,
        )
        from repro.octree.multipoles import compute_multipoles_vectorized

        def build(box):
            return build_octree_twostage(
                system.x, bits=config.bits, box=box, ctx=ctx
            )

        maint = None
        if config.tree_update != "rebuild":
            from repro.maintenance.maintainer import get_maintainer

            maint = get_maintainer(cache, config, ctx)
            pool = maint.maintain_octree(system, self, build)
            entry = maint.entry
        else:
            entry = _cache_entry(cache, "octree-2stage", config, system, ctx)
            pool = None if entry is None else entry["structure"]
            if pool is None:
                box = self._bounding_box(system, ctx)
                with ctx.step("build_tree"):
                    pool = build(box)
                entry = _store_structure(
                    cache, "octree-2stage", pool, config, system)
        if not _moments_ready(entry):
            with ctx.step("multipoles"):
                compute_multipoles_vectorized(
                    pool, system.x, system.m, ctx,
                    order=config.multipole_order, account="levelwise",
                )
            _mark_moments_ready(entry)
        with ctx.step("force"):
            if config.traversal == "dual":
                acc = octree_accelerations_dual(
                    pool, system.x, system.m, config.gravity,
                    theta=config.theta, group_size=config.group_size,
                    cc_mac=config.cc_mac,
                    expansion_order=config.expansion_order,
                    ctx=ctx, simt_width=config.simt_width, cache=entry,
                    mac_margin=maint.mac_margin if maint is not None else 0.0,
                    eval_mode=config.eval_mode,
                )
            elif config.traversal == "grouped":
                acc = octree_accelerations_grouped(
                    pool, system.x, system.m, config.gravity,
                    theta=config.theta, group_size=config.group_size,
                    ctx=ctx, simt_width=config.simt_width, cache=entry,
                    mac_margin=maint.mac_margin if maint is not None else 0.0,
                    eval_mode=config.eval_mode,
                )
            else:
                acc = octree_accelerations(
                    pool, system.x, system.m, config.gravity,
                    theta=config.theta, ctx=ctx, simt_width=config.simt_width,
                )
        if maint is not None:
            maint.finish_step(system.x)
        return acc


def _moments_ready(entry: dict | None) -> bool:
    """May the multipole pass be skipped for this cache entry?

    Only content-addressed shared entries (``exact``: keyed by the
    digest of the very positions and masses being evaluated) qualify —
    their pool already carries the moments of bit-identical inputs.
    Plain reuse entries age across drifting positions and must refresh
    moments every step.
    """
    return (entry is not None and bool(entry.get("exact"))
            and bool(entry.get("moments_ready")))


def _mark_moments_ready(entry: dict | None) -> None:
    if entry is not None and entry.get("exact"):
        entry["moments_ready"] = True


def _cache_entry(
    cache: dict | None,
    key: str,
    config: SimulationConfig,
    system: BodySystem | None = None,
    ctx: ExecutionContext | None = None,
) -> dict | None:
    """Return the cache entry if its tree structure is still fresh enough.

    The entry dict also carries per-structure derived state (the grouped
    traversal stores its interaction lists in it), which therefore
    expires exactly when the structure does.

    When the cache dict carries a ``"_shared"``
    :class:`~repro.serve.cache.SharedStructureCache`, lookups are
    content-addressed instead: the entry is served only on an exact
    (config fingerprint, position/mass digest) match, so sessions of
    identical tenants share structures and lists without any aging.
    """
    if cache is None:
        return None
    shared = cache.get("_shared")
    if shared is not None and system is not None:
        entry = shared.lookup(key, config, system, ctx=ctx)
        if entry is not None or shared.supports(config):
            return entry
    if config.tree_reuse_steps <= 1:
        return None
    entry = cache.get(key)
    if entry is None or entry["age"] >= config.tree_reuse_steps:
        return None
    entry["age"] += 1
    return entry


def _store_structure(
    cache: dict | None,
    key: str,
    structure,
    config: SimulationConfig | None = None,
    system: BodySystem | None = None,
) -> dict | None:
    if cache is None:
        return None
    shared = cache.get("_shared")
    if shared is not None and system is not None and config is not None:
        entry = shared.store(key, config, system, structure)
        if entry is not None:
            return entry
    entry: dict = {"structure": structure, "age": 1}
    if system is not None and config is not None and config.tree_reuse_steps > 1:
        # Positions the structure was built from: the mid-epoch
        # checkpoint path (repro.core.suspend) replays the epoch build
        # and list construction from these to resume bit-exact.
        entry["x_epoch"] = np.array(system.x, copy=True)
    cache[key] = entry
    return entry


ALGORITHMS: dict[str, ForceAlgorithm] = {
    a.name: a
    for a in (
        AllPairs(),
        AllPairsCol(),
        OctreeAlgorithm(),
        BVHAlgorithm(),
        TwoStageOctreeAlgorithm(),
    )
}


def get_algorithm(name: str) -> ForceAlgorithm:
    try:
        return ALGORITHMS[name]
    except KeyError:
        raise KeyError(f"unknown algorithm {name!r}; have {sorted(ALGORITHMS)}") from None


def list_algorithms() -> list[str]:
    return list(ALGORITHMS)
