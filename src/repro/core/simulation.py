"""The time-integration loop (paper Algorithm 2 / Algorithm 6)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.algorithms import ForceAlgorithm, get_algorithm
from repro.core.config import SimulationConfig
from repro.machine.counters import StepCounters
from repro.physics.bodies import BodySystem
from repro.physics.integrator import VerletIntegrator
from repro.stdpar.context import ExecutionContext

#: Canonical step order for reporting (paper Algorithm 2 / 6, extended
#: with the distributed phases of repro.distributed).
STEP_ORDER = (
    "partition",
    "bounding_box",
    "encode",
    "sort",
    "build_tree",
    "refit",
    "multipoles",
    "exchange",
    "force",
    "update_position",
)


@dataclass
class StepReport:
    """Accounting for a contiguous run of timesteps."""

    n_steps: int
    counters: StepCounters
    seconds: dict[str, float] = field(default_factory=dict)

    @property
    def wall_seconds(self) -> float:
        return sum(self.seconds.values())

    def per_step(self) -> StepCounters:
        """Counters averaged over the timesteps."""
        out = StepCounters()
        for k, c in self.counters.steps.items():
            out.steps[k] = c.scaled(1.0 / max(self.n_steps, 1))
        return out


class Simulation:
    """Binds bodies + algorithm + device context and advances in time.

    Example::

        sim = Simulation(system, SimulationConfig(algorithm="bvh"))
        sim.run(100)
        print(sim.last_report.wall_seconds)
    """

    def __init__(
        self,
        system: BodySystem,
        config: SimulationConfig | None = None,
        *,
        ctx: ExecutionContext | None = None,
        tracer=None,
        metrics=None,
        tree_cache: dict | None = None,
        runtime_state: dict | None = None,
    ):
        self.system = system
        self.config = config if config is not None else SimulationConfig()
        self.ctx = ctx if ctx is not None else ExecutionContext()
        if tracer is not None:
            #: Structured span tracing (:mod:`repro.obs`); attaching it
            #: here covers the whole pipeline, including the force
            #: evaluation the integrator performs at construction
            #: (``run`` re-anchors the trace to its own window).
            self.ctx.tracer = tracer
        #: Optional :class:`repro.obs.MetricsRegistry`, sampled once per
        #: timestep (and fed by the TrajectoryRecorder when present).
        self.metrics = metrics
        self.algorithm: ForceAlgorithm = get_algorithm(self.config.algorithm)
        self.last_report: StepReport | None = None
        #: Per-simulation tree-structure cache (config.tree_reuse_steps).
        #: An injected dict may carry a ``"_shared"``
        #: :class:`~repro.serve.cache.SharedStructureCache` marker for
        #: cross-session structure sharing.
        self._tree_cache: dict = tree_cache if tree_cache is not None else {}
        #: Simulated multi-rank runtime; ``ranks=1`` bypasses it
        #: entirely so the single-rank path stays bit-identical.
        self.distributed = None
        if self.config.ranks > 1:
            from repro.distributed.runtime import DistributedRuntime

            self.distributed = DistributedRuntime(self.config, self.ctx)
        if runtime_state is not None:
            # Mid-epoch checkpoint resume: reconstruct cached structures,
            # interaction lists, and decomposition state *before* the
            # integrator's construction-time force evaluation, which then
            # replays the suspended step's evaluation bit-exactly.
            from repro.core.suspend import apply_runtime_state

            apply_runtime_state(self, runtime_state)
        self._integrator = VerletIntegrator(
            system, self._accelerations, self.config.dt
        )

    # ------------------------------------------------------------------
    def _accelerations(self, system: BodySystem) -> np.ndarray:
        if self.distributed is not None:
            return self.distributed.accelerations(system)
        return self.algorithm.accelerations(
            system, self.config, self.ctx, cache=self._tree_cache
        )

    def _charge_update_position(self, n_steps: int) -> None:
        """UPDATEPOSITION: two kicks + one drift per step, streaming."""
        n, dim = self.system.n, self.system.dim
        with self.ctx.step("update_position"):
            self.ctx.counters.add(
                flops=float(n_steps) * 6.0 * n * dim,
                bytes_read=float(n_steps) * 3.0 * 8.0 * n * dim,
                bytes_written=float(n_steps) * 2.0 * 8.0 * n * dim,
                loop_iterations=float(n_steps) * n,
                kernel_launches=float(n_steps) * 3.0,
            )

    # ------------------------------------------------------------------
    def run(self, n_steps: int = 1) -> StepReport:
        """Advance *n_steps* timesteps; returns (and stores) accounting."""
        if n_steps < 0:
            raise ValueError("n_steps must be non-negative")
        self.ctx.reset_accounting()
        tracer = self.ctx.tracer
        if tracer.enabled or self.metrics is not None:
            # Observed path: same integration, one step at a time, so
            # every timestep gets its own trace group and metrics
            # sample.  Physics is identical — the integrator's n-step
            # loop is literally re-entered once per step.
            if self.metrics is not None:
                self.metrics.begin_run(self)
            for k in range(n_steps):
                if tracer.enabled:
                    with tracer.group("step", args={"step": k}):
                        self._integrator.step(1)
                else:
                    self._integrator.step(1)
                if self.metrics is not None:
                    self.metrics.sample_step(self, k)
        else:
            self._integrator.step(n_steps)
        self._charge_update_position(n_steps)
        if self.metrics is not None:
            self.metrics.end_run(self)
        self.last_report = StepReport(
            n_steps=n_steps,
            counters=self.ctx.step_counters,
            seconds=dict(self.ctx.step_seconds),
        )
        return self.last_report

    def advance(self, n_steps: int = 1) -> StepReport:
        """Advance *n_steps* without resetting accounting (service path).

        Like :meth:`run`, but accumulates into the context's existing
        counters instead of re-anchoring them, so several sessions may
        interleave on one shared context/tracer (each on its own trace
        lane) and a session can be driven one scheduler quantum at a
        time.  The returned report covers exactly these steps, computed
        from per-bucket counter deltas; trace step groups carry the
        absolute step index.
        """
        if n_steps < 0:
            raise ValueError("n_steps must be non-negative")
        before = {
            k: c.as_dict() for k, c in self.ctx.step_counters.steps.items()
        }
        seconds_before = dict(self.ctx.step_seconds)
        tracer = self.ctx.tracer
        if tracer.enabled:
            base = self._integrator.steps_taken
            lane = self.ctx.trace_lane
            for k in range(n_steps):
                with tracer.group("step", args={"step": base + k}, lane=lane):
                    self._integrator.step(1)
        else:
            self._integrator.step(n_steps)
        self._charge_update_position(n_steps)
        from repro.obs.tracer import _bucket_delta

        delta = StepCounters()
        for name, c in self.ctx.step_counters.steps.items():
            d = _bucket_delta(before.get(name, {}), c.as_dict())
            if d:
                delta.step(name).add(**d)
        seconds = {}
        for name, v in self.ctx.step_seconds.items():
            dv = v - seconds_before.get(name, 0.0)
            if dv > 0.0:
                seconds[name] = dv
        self.last_report = StepReport(
            n_steps=n_steps, counters=delta, seconds=seconds
        )
        return self.last_report

    def runtime_state(self) -> dict | None:
        """Replayable cross-step cache/decomposition state (or None).

        Feed the returned dict back through ``Simulation(...,
        runtime_state=...)`` — or let the checkpoint path embed it — to
        resume mid-epoch bit-exactly.  See :mod:`repro.core.suspend`.
        """
        from repro.core.suspend import capture_runtime_state

        return capture_runtime_state(self)

    def evaluate_forces(self) -> np.ndarray:
        """One force evaluation without advancing time (accounted)."""
        self.ctx.reset_accounting()
        acc = self._accelerations(self.system)
        self.last_report = StepReport(
            n_steps=1,
            counters=self.ctx.step_counters,
            seconds=dict(self.ctx.step_seconds),
        )
        return acc

    @property
    def time(self) -> float:
        return self._integrator.steps_taken * self.config.dt
