"""Trajectory recorder: diagnostics time series for long runs.

Wraps a :class:`~repro.core.simulation.Simulation` and samples the
conservation diagnostics (energy, momentum, angular momentum, centre of
mass) plus optional position snapshots at a configurable cadence —
what the examples and the conservation regression tests use to follow
a collision through time without recomputing O(N²) potentials every
step.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.simulation import Simulation
from repro.obs.metrics import conservation_sample


@dataclass
class TraceSample:
    """One sampled instant."""

    time: float
    step: int
    kinetic: float
    potential: float | None
    momentum: np.ndarray
    angular_momentum: np.ndarray
    center_of_mass: np.ndarray

    @property
    def total_energy(self) -> float | None:
        return None if self.potential is None else self.kinetic + self.potential


@dataclass
class Trace:
    """A recorded diagnostics time series."""

    samples: list[TraceSample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def times(self) -> np.ndarray:
        return np.array([s.time for s in self.samples])

    @property
    def energies(self) -> np.ndarray:
        return np.array([
            np.nan if s.total_energy is None else s.total_energy
            for s in self.samples
        ])

    def max_energy_drift(self) -> float:
        """max |E(t) - E(0)| / |E(0)| over the sampled instants."""
        e = self.energies
        if len(e) == 0 or np.isnan(e[0]) or e[0] == 0.0:
            return float("nan")
        return float(np.nanmax(np.abs(e - e[0]) / abs(e[0])))

    def max_momentum_drift(self) -> float:
        p = np.array([s.momentum for s in self.samples])
        if len(p) == 0:
            return float("nan")
        return float(np.abs(p - p[0]).max())


class TrajectoryRecorder:
    """Runs a simulation in chunks, sampling diagnostics between them.

    ``compute_potential=False`` skips the O(N²) potential (recommended
    above ~3e4 bodies); energy fields are then ``None``.
    """

    def __init__(
        self,
        sim: Simulation,
        *,
        sample_every: int = 1,
        compute_potential: bool = True,
        metrics=None,
    ):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sim = sim
        self.sample_every = sample_every
        self.compute_potential = compute_potential
        #: Metrics registry the drifts are routed to — the simulation's
        #: own by default, so the recorder and ``--metrics-out`` share
        #: one sampling path (repro.obs.metrics.conservation_sample).
        self.metrics = metrics if metrics is not None else getattr(
            sim, "metrics", None)
        self.trace = Trace()
        self._sample(step=0)

    def _sample(self, step: int) -> None:
        diag = conservation_sample(
            self.sim.system, self.sim.config.gravity,
            compute_potential=self.compute_potential,
        )
        self.trace.samples.append(TraceSample(
            time=self.sim.time,
            step=step,
            kinetic=diag["kinetic"],
            potential=diag["potential"],
            momentum=diag["momentum"],
            angular_momentum=diag["angular_momentum"],
            center_of_mass=diag["center_of_mass"],
        ))
        if self.metrics is not None and step > 0:
            e = self.trace.energies
            drift = None
            if not (np.isnan(e[0]) or e[0] == 0.0):
                drift = float(abs(e[-1] - e[0]) / abs(e[0]))
            p = self.trace.samples
            momentum_drift = float(
                np.abs(p[-1].momentum - p[0].momentum).max())
            self.metrics.observe_conservation(
                step, energy_drift=drift, momentum_drift=momentum_drift,
                sim=self.sim,
            )

    def run(self, n_steps: int) -> Trace:
        """Advance ``n_steps``, sampling every ``sample_every`` steps."""
        done = 0
        while done < n_steps:
            chunk = min(self.sample_every, n_steps - done)
            self.sim.run(chunk)
            done += chunk
            self._sample(step=self.trace.samples[-1].step + chunk)
        return self.trace
