"""Barnes-Hut t-SNE (van der Maaten [28]) on the reproduction's quadtree.

t-SNE embeds high-dimensional points into 2-D by matching pairwise
affinity distributions.  The gradient splits into an attractive part
over the (sparse) input affinities and a *repulsive part that is
exactly an N-body problem* with the Student-t kernel:

    dC/dy_i = 4 * ( sum_j p_ij q_ij (y_i - y_j)
                    - sum_j q_ij^2 (y_i - y_j) / Z ),   q_ij = 1/(1+|y_i-y_j|^2)

Barnes-Hut-SNE approximates the second sum (and Z) with a quadtree —
the very application the paper's introduction cites as the modern
driver for tree codes.  Here the repulsion runs through
:func:`repro.octree.interaction.tree_interaction` with the
:class:`~repro.octree.interaction.StudentTKernel`, i.e. the identical
traversal machinery the gravity simulations use.

The implementation is deliberately classic: perplexity calibration by
binary search, early exaggeration, momentum gradient descent.  Dense
input affinities keep it O(N²) in the *input* space (fine for the
example sizes); the embedding-space repulsion is O(N log N).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.octree.build_vectorized import build_octree_vectorized
from repro.octree.interaction import StudentTKernel, tree_interaction
from repro.octree.multipoles import compute_multipoles_vectorized
from repro.types import FLOAT


def _pairwise_sq_dists(x: np.ndarray) -> np.ndarray:
    s = np.einsum("ij,ij->i", x, x)
    d2 = s[:, None] + s[None, :] - 2.0 * (x @ x.T)
    np.fill_diagonal(d2, 0.0)
    return np.maximum(d2, 0.0)


def pairwise_affinities(
    x: np.ndarray,
    perplexity: float = 30.0,
    *,
    tol: float = 1e-5,
    max_iter: int = 60,
) -> np.ndarray:
    """Symmetrized input affinities P with per-point perplexity
    calibration (binary search over the Gaussian bandwidths)."""
    x = np.asarray(x, dtype=FLOAT)
    n = x.shape[0]
    if n < 2:
        raise ValueError("need at least 2 points")
    if not 1.0 <= perplexity < n:
        raise ValueError(f"perplexity must be in [1, n); got {perplexity}")
    d2 = _pairwise_sq_dists(x)
    target = np.log(perplexity)
    p = np.zeros((n, n), dtype=FLOAT)
    for i in range(n):
        di = np.delete(d2[i], i)
        beta_lo, beta_hi = 0.0, np.inf
        beta = 1.0
        for _ in range(max_iter):
            w = np.exp(-di * beta)
            sw = max(w.sum(), 1e-300)
            h = np.log(sw) + beta * float((di * w).sum()) / sw  # entropy
            if abs(h - target) < tol:
                break
            if h > target:          # too flat: raise beta
                beta_lo = beta
                beta = beta * 2.0 if beta_hi == np.inf else 0.5 * (beta + beta_hi)
            else:
                beta_hi = beta
                beta = 0.5 * (beta + beta_lo)
        row = np.exp(-np.maximum(d2[i], 0.0) * beta)
        row[i] = 0.0
        p[i] = row / max(row.sum(), 1e-300)
    p = (p + p.T) / (2.0 * n)
    return np.maximum(p, 1e-12)


@dataclass
class BarnesHutTSNE:
    """Barnes-Hut t-SNE into 2-D.

    Parameters follow the original: ``theta`` is the same distance
    threshold the simulations use (0.5 by default, as in the paper's
    experiments and in [28]).
    """

    perplexity: float = 30.0
    theta: float = 0.5
    n_iter: int = 350
    learning_rate: float = 100.0
    early_exaggeration: float = 12.0
    exaggeration_iters: int = 80
    momentum_early: float = 0.5
    momentum_late: float = 0.8
    seed: int = 0
    #: set False to use the exact O(N^2) repulsion (used by the tests
    #: to validate the tree approximation).
    use_tree: bool = True
    #: filled by fit_transform: KL divergence per recorded iteration.
    history: list[float] = field(default_factory=list)

    # ------------------------------------------------------------------
    def _repulsion(self, y: np.ndarray):
        """(repulsion numerator sum_j q^2 (y_i - y_j), Z) via quadtree
        or exactly.  The tree traversal accumulates along ``com - y_i``
        (toward the node), so its vector field is negated here."""
        n = y.shape[0]
        if self.use_tree and n > 16:
            pool = build_octree_vectorized(y)
            compute_multipoles_vectorized(pool, y, np.ones(n))
            rep, z = tree_interaction(
                pool, y, np.ones(n), StudentTKernel(), theta=self.theta
            )
            return -rep, float(z.sum())
        d2 = _pairwise_sq_dists(y)
        q = 1.0 / (1.0 + d2)
        np.fill_diagonal(q, 0.0)
        rep = np.einsum("ij,ijk->ik", q * q, y[:, None, :] - y[None, :, :])
        return rep, float(q.sum())

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        """Embed ``x (N, D)`` into 2-D."""
        x = np.asarray(x, dtype=FLOAT)
        n = x.shape[0]
        p = pairwise_affinities(x, self.perplexity)
        rng = np.random.default_rng(self.seed)
        y = 1e-4 * rng.standard_normal((n, 2))
        update = np.zeros_like(y)
        self.history = []

        for it in range(self.n_iter):
            exag = self.early_exaggeration if it < self.exaggeration_iters else 1.0
            momentum = (self.momentum_early if it < self.exaggeration_iters
                        else self.momentum_late)

            # Attractive term (dense P; q reweights each edge).
            diff = y[:, None, :] - y[None, :, :]
            d2 = np.einsum("ijk,ijk->ij", diff, diff)
            q = 1.0 / (1.0 + d2)
            np.fill_diagonal(q, 0.0)
            attr = np.einsum("ij,ijk->ik", exag * p * q, diff)

            rep, z = self._repulsion(y)
            grad = 4.0 * (attr - rep / max(z, 1e-300))

            update = momentum * update - self.learning_rate * grad
            y += update
            y -= y.mean(axis=0)

            if it % 25 == 0 or it == self.n_iter - 1:
                qn = q / max(q.sum(), 1e-300)
                kl = float((p * np.log(np.maximum(p, 1e-12)
                                       / np.maximum(qn, 1e-12))).sum())
                self.history.append(kl)
        return y
