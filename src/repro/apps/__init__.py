"""Applications built on the tree substrate.

The paper's introduction motivates Barnes-Hut beyond cosmology: "more
recently for high-dimensional data visualisation in machine learning",
with related work naming t-SNE [27] and Barnes-Hut-SNE [28].  This
package delivers that application: a Barnes-Hut t-SNE whose repulsive
forces run through the same quadtree machinery the simulations use.
"""

from repro.apps.tsne import BarnesHutTSNE, pairwise_affinities

__all__ = ["BarnesHutTSNE", "pairwise_affinities"]
