"""Terminal visualization helpers.

N-body runs are easiest to sanity-check visually; these renderers draw
density maps, labeled scatters and per-step time bars as plain text so
they work over ssh and inside test logs (the examples use them for
their "ASCII movies").
"""

from __future__ import annotations

import numpy as np

#: Density shading ramp, light to dark.
SHADES = " .:-=+*#%@"
#: Glyphs for labeled scatter plots.
GLYPHS = "abcdefghijklmnop"


def density_map(
    x: np.ndarray,
    *,
    width: int = 64,
    height: int = 24,
    axes: tuple[int, int] = (0, 1),
    gamma: float = 3.0,
) -> str:
    """ASCII density of points projected onto two axes.

    *gamma* > 1 boosts faint regions so sparse halos stay visible next
    to dense cores.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 2 or x.shape[0] == 0:
        return "(no points)"
    ax, ay = axes
    px, py = x[:, ax], x[:, ay]
    lo = np.array([px.min(), py.min()])
    hi = np.array([px.max(), py.max()])
    span = np.maximum(hi - lo, 1e-12)
    cols = np.clip(((px - lo[0]) / span[0] * (width - 1)).astype(int), 0, width - 1)
    rows = np.clip(((py - lo[1]) / span[1] * (height - 1)).astype(int), 0, height - 1)
    counts = np.zeros((height, width), dtype=int)
    np.add.at(counts, (rows, cols), 1)
    peak = max(counts.max(), 1)
    idx = np.minimum(
        (counts / peak * (len(SHADES) - 1) * gamma).astype(int), len(SHADES) - 1
    )
    # y axis points up
    return "\n".join("".join(SHADES[v] for v in row) for row in idx[::-1])


def scatter(
    y: np.ndarray,
    labels: np.ndarray | None = None,
    *,
    width: int = 64,
    height: int = 24,
) -> str:
    """ASCII scatter with one glyph per label (all '*' when unlabeled)."""
    y = np.asarray(y, dtype=float)
    if y.ndim != 2 or y.shape[1] < 2 or y.shape[0] == 0:
        return "(no points)"
    if labels is None:
        labels = np.zeros(len(y), dtype=int)
    lo = y[:, :2].min(axis=0)
    hi = y[:, :2].max(axis=0)
    span = np.maximum(hi - lo, 1e-12)
    canvas = [[" "] * width for _ in range(height)]
    for (px, py), lab in zip(y[:, :2], labels):
        i = int(np.clip((px - lo[0]) / span[0] * (width - 1), 0, width - 1))
        j = int(np.clip((1.0 - (py - lo[1]) / span[1]) * (height - 1), 0, height - 1))
        canvas[j][i] = GLYPHS[int(lab) % len(GLYPHS)] if labels is not None else "*"
    return "\n".join("".join(row) for row in canvas)


def time_bars(seconds: dict[str, float], *, width: int = 46) -> str:
    """Horizontal bars of per-step wall time (for StepReport.seconds)."""
    if not seconds:
        return "(no steps)"
    total = sum(seconds.values())
    peak = max(seconds.values())
    lines = []
    for step, t in sorted(seconds.items(), key=lambda kv: -kv[1]):
        bar = "#" * max(1, int(round(t / max(peak, 1e-300) * width)))
        share = t / total * 100 if total else 0.0
        lines.append(f"{step:>16s} |{bar:<{width}s}| {t:9.4f}s {share:5.1f}%")
    return "\n".join(lines)
