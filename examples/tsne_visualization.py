#!/usr/bin/env python3
"""Barnes-Hut t-SNE: the paper's machine-learning motivation, live.

"N-Body simulations are often used in cosmology ... and more recently
for high-dimensional data visualisation in machine learning" (paper
Section I; refs [27], [28]).  This example embeds clustered
high-dimensional data into 2-D with t-SNE whose repulsive forces run
through the same quadtree machinery as the gravity simulations, and
draws the embedding as ASCII.

Run:  python examples/tsne_visualization.py [n_per_cluster]
"""

import sys

import numpy as np

from repro.apps import BarnesHutTSNE
from repro.viz import scatter


def main() -> None:
    n_per = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    k, d = 4, 16
    rng = np.random.default_rng(3)
    centers = rng.standard_normal((k, d)) * 7.0
    x = np.vstack([c + rng.standard_normal((n_per, d)) for c in centers])
    labels = np.repeat(np.arange(k), n_per)

    print(f"{k} Gaussian clusters x {n_per} points in {d}-D "
          f"-> 2-D via Barnes-Hut t-SNE (theta=0.5, quadtree repulsion)")
    tsne = BarnesHutTSNE(perplexity=min(30, n_per - 1), theta=0.5,
                         n_iter=350, seed=0)
    y = tsne.fit_transform(x)

    print("\nKL divergence along the run:",
          "  ".join(f"{v:.2f}" for v in tsne.history))
    print("\nembedding (one letter per cluster):\n")
    print(scatter(y, labels, width=68, height=26))

    within = np.mean([
        np.linalg.norm(y[labels == a] - y[labels == a].mean(0), axis=1).mean()
        for a in range(k)
    ])
    between = np.mean([
        np.linalg.norm(y[labels == a].mean(0) - y[labels == b].mean(0))
        for a in range(k) for b in range(a + 1, k)
    ])
    print(f"\ncluster separation: between/within = {between / within:.1f}x")
    print("The repulsive O(N log N) sum ran through the identical tree")
    print("build + stackless traversal the gravity benchmarks exercise.")


if __name__ == "__main__":
    main()
