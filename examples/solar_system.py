#!/usr/bin/env python3
"""The Section V-A validation experiment, interactively.

Evolves a synthetic small-body population (the JPL Small-Body Database
stand-in) for one day at one-hour timesteps with every algorithm, then
cross-checks final positions the way the paper does — the L2 error norm
across implementations must stay below 1e-6.

Run:  python examples/solar_system.py [n_bodies]
"""

import sys

import numpy as np

from repro import Simulation, SimulationConfig, solar_system
from repro.physics.accuracy import relative_l2_error
from repro.workloads.solar import SOLAR_GRAVITY


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 3000
    dt_hour = 1.0 / 24.0
    cfg = SimulationConfig(theta=0.5, dt=dt_hour, gravity=SOLAR_GRAVITY)

    print(f"{n} synthetic small bodies on Keplerian belt orbits "
          f"(paper: 1,039,551 JPL bodies)")
    print("integrating one full day at dt = 1 hour with each algorithm...\n")

    finals = {}
    for alg in ("all-pairs", "octree", "bvh"):
        system = solar_system(n, seed=2024)
        sim = Simulation(system, cfg.with_(algorithm=alg))
        rep = sim.run(24)
        finals[alg] = system.x.copy()
        print(f"  {alg:14s} {rep.wall_seconds:6.2f} s "
              f"({n * 24 / rep.wall_seconds:,.0f} body-steps/s)")

    print("\npairwise relative L2 position error after one day "
          "(paper bound: < 1e-6):")
    pairs = [("octree", "all-pairs"), ("bvh", "all-pairs"), ("octree", "bvh")]
    for a, b in pairs:
        err = relative_l2_error(finals[a], finals[b])
        status = "OK" if err < 1e-6 else "FAIL"
        print(f"  {a:8s} vs {b:10s} {err:.3e}  [{status}]")

    r = np.linalg.norm(finals["octree"][1:], axis=1)
    print(f"\nheliocentric distances after one day: "
          f"min {r.min():.2f} AU, median {np.median(r):.2f} AU, "
          f"max {r.max():.2f} AU (belt intact)")


if __name__ == "__main__":
    main()
