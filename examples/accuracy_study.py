#!/usr/bin/env python3
"""Accuracy vs work: the theta trade-off for both tree strategies.

Sweeps the distance threshold and reports, against the exact all-pairs
reference, the force error and the traversal work — making visible the
paper's note that "the interpretation of the distance threshold between
the octree and the BVH is different, and the accuracy of computation
may vary for the same distance threshold" (end of Section IV-B).

Run:  python examples/accuracy_study.py [n_bodies]
"""

import sys

import numpy as np

from repro import ExecutionContext, GravityParams, galaxy_collision
from repro.bench import format_table
from repro.bvh.build import build_bvh
from repro.bvh.force import bvh_accelerations
from repro.octree.build_vectorized import build_octree_vectorized
from repro.octree.force import octree_accelerations
from repro.octree.multipoles import compute_multipoles_vectorized
from repro.physics.gravity import pairwise_accelerations


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    params = GravityParams(softening=0.05)
    system = galaxy_collision(n, seed=0)
    ref = pairwise_accelerations(system.x, system.m, params)
    scale = np.abs(ref).max()

    pool = build_octree_vectorized(system.x)
    compute_multipoles_vectorized(pool, system.x, system.m)
    bvh = build_bvh(system.x, system.m)

    rows = []
    for theta in (0.1, 0.25, 0.5, 0.75, 1.0, 1.5):
        for strategy in ("octree", "bvh"):
            ctx = ExecutionContext()
            if strategy == "octree":
                acc = octree_accelerations(pool, system.x, system.m, params,
                                           theta=theta, ctx=ctx)
            else:
                acc = bvh_accelerations(bvh, params, theta=theta, ctx=ctx)
            rows.append({
                "theta": theta,
                "strategy": strategy,
                "max_rel_force_error": float(np.abs(acc - ref).max() / scale),
                "node_visits_per_body": round(ctx.counters.traversal_steps / n, 1),
            })

    print(format_table(rows, title=f"theta sweep, galaxy N={n} "
                                   f"(reference: exact all-pairs)"))
    print("\nReading: at the same theta the two strategies do different "
          "amounts of work AND deliver different accuracy — comparing "
          "them fairly requires fixing one or the other, which is why "
          "the paper reports fixed-theta throughput and validates "
          "accuracy separately (Section V-A).")


if __name__ == "__main__":
    main()
