#!/usr/bin/env python3
"""Quickstart: simulate a small galaxy collision with Barnes-Hut.

Demonstrates the 30-second path through the public API: build a
workload, pick an algorithm, run, inspect conservation and the
per-step accounting.

Run:  python examples/quickstart.py
"""

from repro import GravityParams, Simulation, SimulationConfig, galaxy_collision
from repro.physics import energy_report


def main() -> None:
    gravity = GravityParams(G=1.0, softening=0.05)
    system = galaxy_collision(4000, seed=42)

    config = SimulationConfig(
        algorithm="octree",   # "all-pairs" | "all-pairs-col" | "octree" | "bvh"
        theta=0.5,            # the paper's opening angle
        dt=1e-2,
        gravity=gravity,
    )

    before = energy_report(system, gravity)
    sim = Simulation(system, config)
    report = sim.run(20)
    after = energy_report(system, gravity)

    print(f"simulated {system.n} bodies for {report.n_steps} steps "
          f"(t = {sim.time:.3f}) in {report.wall_seconds:.2f} s")
    print(f"throughput: {system.n * report.n_steps / report.wall_seconds:,.0f} bodies/s")
    print(f"energy drift: {after.drift_from(before):.2e}")
    print("\nwall time by pipeline step (paper Algorithm 2):")
    for step, seconds in sorted(report.seconds.items(), key=lambda kv: -kv[1]):
        print(f"  {step:16s} {seconds:8.3f} s")
    print("\noperation counts of the force step (per run):")
    force = report.counters.steps["force"]
    print(f"  tree-node visits : {force.traversal_steps:,.0f}")
    print(f"  FP64 operations  : {force.flops:,.0f}")


if __name__ == "__main__":
    main()
