#!/usr/bin/env python3
"""Checkpoint/restart and diagnostics tracing on a long collision run.

Long N-body runs need two production amenities the paper's artifact
leaves to scripts: periodic conservation monitoring and exact
checkpoint/restart.  This example runs a galaxy collision in chunks
with the trajectory recorder, snapshots half-way, then proves a
restarted simulation continues bit-identically.

Run:  python examples/checkpoint_restart.py
"""

import tempfile
import pathlib

import numpy as np

from repro import GravityParams, Simulation, SimulationConfig, galaxy_collision
from repro.core.trace import TrajectoryRecorder
from repro.io import load_snapshot, save_snapshot


def main() -> None:
    gravity = GravityParams(softening=0.05)
    cfg = SimulationConfig(algorithm="bvh", theta=0.5, dt=1e-2, gravity=gravity)

    system = galaxy_collision(2000, seed=11)
    sim = Simulation(system, cfg)
    recorder = TrajectoryRecorder(sim, sample_every=10)

    print("running 40 steps with diagnostics sampling every 10...")
    recorder.run(40)

    with tempfile.TemporaryDirectory() as tmp:
        ckpt = pathlib.Path(tmp) / "halfway.npz"
        save_snapshot(ckpt, system, time=sim.time,
                      metadata={"algorithm": cfg.algorithm, "theta": cfg.theta})
        print(f"checkpointed at t = {sim.time:.2f} -> {ckpt.name}")

        recorder.run(40)  # original continues to t = 0.8
        trace = recorder.trace
        print("\ndiagnostics trace:")
        print(f"  samples           : {len(trace)}")
        print(f"  max energy drift  : {trace.max_energy_drift():.3e}")
        print(f"  max momentum drift: {trace.max_momentum_drift():.3e}")

        # Restart from the checkpoint and catch up.
        restored, header = load_snapshot(ckpt)
        sim2 = Simulation(restored, cfg)
        sim2.run(40)
        gap = np.abs(restored.x - system.x).max()
        print(f"\nrestart check: restarted run reaches t = "
              f"{header['time'] + sim2.time:.2f}; max position gap vs the "
              f"uninterrupted run = {gap:.2e}")
        assert gap < 1e-12, "restart must be bit-faithful"
        print("restart is exact.")


if __name__ == "__main__":
    main()
