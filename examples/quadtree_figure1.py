#!/usr/bin/env python3
"""Paper Figure 1, live: the quadtree data structure and memory layout.

The paper's exposition uses a 2-D quadtree (the octree's flat cousin):
each node stores one offset to its first child, sibling groups store
one parent offset, children sit in Morton order at larger offsets than
their parent.  This example builds the quadtree over a handful of 2-D
bodies and prints both views of Figure 1 — the spatial subdivision and
the in-memory node array — so you can see tokens (Empty/Body) and
child offsets exactly as the paper draws them.

Run:  python examples/quadtree_figure1.py
"""

import numpy as np

from repro.octree.build_vectorized import build_octree_vectorized
from repro.octree.layout import EMPTY, decode_body, is_body_token
from repro.octree.traversal import compute_escape_indices, validate_tree


def render_grid(pool, x, size: int = 33) -> str:
    """ASCII picture of the subdivision with body labels."""
    canvas = [[" "] * size for _ in range(size)]

    def draw_box(cx, cy, half, depth):
        lo_x, hi_x = cx - half, cx + half
        lo_y, hi_y = cy - half, cy + half
        for t in np.linspace(lo_x, hi_x, size):
            for yy in (lo_y, hi_y):
                i, j = _to_cell(t, yy, size)
                canvas[j][i] = "."
        for t in np.linspace(lo_y, hi_y, size):
            for xx in (lo_x, hi_x):
                i, j = _to_cell(xx, t, size)
                canvas[j][i] = "."

    def _to_cell(px, py, size):
        i = int(np.clip(px * (size - 1), 0, size - 1))
        j = int(np.clip((1.0 - py) * (size - 1), 0, size - 1))
        return i, j

    def rec(node, cx, cy, half, depth):
        draw_box(cx, cy, half, depth)
        c = int(pool.child[node])
        if c < 0:
            return
        q = half / 2
        # Morton order: (-,-), (+,-), (-,+), (+,+)
        offsets = [(-q, -q), (q, -q), (-q, q), (q, q)]
        for i, (dx, dy) in enumerate(offsets):
            rec(c + i, cx + dx, cy + dy, q, depth + 1)

    cube = pool.box
    rec(0, 0.5, 0.5, 0.5, 0)
    for b, (px, py) in enumerate(x):
        i, j = _to_cell(px, py, size)
        canvas[j][i] = str(b % 10)
    return "\n".join("".join(row) for row in canvas)


def render_memory(pool) -> str:
    """The Fig. 1 node array: child word per node, parent per group."""
    lines = ["node  child-word        parent  escape"]
    esc = compute_escape_indices(pool)
    for node in range(pool.n_nodes):
        token = int(pool.child[node])
        if token >= 0:
            word = f"child -> {token}"
        elif token == EMPTY:
            word = "E (empty)"
        elif is_body_token(token):
            word = f"B{decode_body(token)} (body)"
        else:
            word = "L (locked)"
        parent = pool.parent_of(node)
        lines.append(f"{node:4d}  {word:16s} {parent:6d}  {int(esc[node]):6d}")
    return "\n".join(lines)


def main() -> None:
    rng = np.random.default_rng(7)
    x = rng.random((6, 2))
    pool = build_octree_vectorized(x, bits=6)
    validate_tree(pool, len(x))

    print("bodies:")
    for b, p in enumerate(x):
        print(f"  {b}: ({p[0]:.3f}, {p[1]:.3f})")
    print("\nspatial subdivision (paper Fig. 1, left):\n")
    print(render_grid(pool, x))
    print("\nmemory layout (paper Fig. 1, right):\n")
    print(render_memory(pool))
    print("\nInvariants on display: one child offset per node, one parent")
    print("offset per sibling group, children in Morton order at strictly")
    print("larger offsets than their parent (the stackless-DFS property).")


if __name__ == "__main__":
    main()
