#!/usr/bin/env python3
"""Project your workload across the paper's Table I machines.

Measures the pipeline's exact operation counts on this host, then asks
the cost model what each catalog device would do with them — the same
machinery behind the Figure 5-9 reproductions, applied to a workload of
your choosing.

Run:  python examples/device_projection.py [n_bodies] [algorithm]
"""

import sys

from repro.bench import format_table, measure_pipeline, project_throughput
from repro.core.config import SimulationConfig
from repro.machine import list_devices
from repro.physics.gravity import GravityParams
from repro.workloads import galaxy_collision


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 50_000
    algorithms = [sys.argv[2]] if len(sys.argv) > 2 else ["octree", "bvh"]

    cfg = SimulationConfig(theta=0.5, gravity=GravityParams(softening=0.05))
    runs = {
        alg: measure_pipeline(lambda k: galaxy_collision(k, seed=0), alg, n,
                              config=cfg, max_direct=8000)
        for alg in algorithms
    }

    rows = []
    for device in list_devices():
        row = {"device": device.name, "kind": device.kind.value}
        for alg, run in runs.items():
            thr = project_throughput(run, device)
            row[f"{alg} [bodies/s]"] = thr
        rows.append(row)
    print(format_table(rows, title=f"projected throughput, galaxy N={n}"))

    for alg, run in runs.items():
        print(f"\n{alg}: host (this Python process) wall-clock "
              f"throughput {run.host_throughput:,.0f} bodies/s "
              f"(measured at N={run.measured_at})")
    print("\n'n/a' = the algorithm cannot run there: the Concurrent "
          "Octree needs parallel forward progress (no AMD/Intel GPUs), "
          "reproducing the missing bars of paper Figure 6.")


if __name__ == "__main__":
    main()
