#!/usr/bin/env python3
"""The paper's benchmark workload: two galaxies colliding.

Follows the collision through time with all diagnostics, comparing the
Concurrent Octree and Hilbert BVH strategies step for step, and renders
an ASCII density map of the merger so you can watch it happen in a
terminal.

Run:  python examples/galaxy_collision.py [n_bodies]
"""

import sys

import numpy as np

from repro import GravityParams, Simulation, SimulationConfig, galaxy_collision
from repro.physics import energy_report, center_of_mass
from repro.physics.accuracy import relative_l2_error
from repro.viz import density_map


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 3000
    gravity = GravityParams(softening=0.05)
    cfg = SimulationConfig(theta=0.5, dt=2e-2, gravity=gravity)

    oct_sys = galaxy_collision(n, seed=7, separation=5.0, approach_speed=0.8)
    bvh_sys = oct_sys.copy()
    oct_sim = Simulation(oct_sys, cfg.with_(algorithm="octree"))
    bvh_sim = Simulation(bvh_sys, cfg.with_(algorithm="bvh"))

    e0 = energy_report(oct_sys, gravity)
    print(f"two Plummer galaxies, {n} bodies total, theta=0.5, dt=0.02")
    print(f"initial energy: T={e0.kinetic:.4f} U={e0.potential:.4f}\n")

    epochs = 6
    steps_per_epoch = 25
    for epoch in range(epochs):
        oct_sim.run(steps_per_epoch)
        bvh_sim.run(steps_per_epoch)
        e = energy_report(oct_sys, gravity)
        drift = e.drift_from(e0)
        gap = relative_l2_error(bvh_sys.x, oct_sys.x)
        com = center_of_mass(oct_sys)
        print(f"t = {oct_sim.time:5.2f}  energy drift {drift:.2e}  "
              f"octree-vs-bvh position gap {gap:.2e}  |com| {np.linalg.norm(com):.2e}")
        print(density_map(oct_sys.x))
        print()

    print("Both tree strategies, same physics: the collision unfolds "
          "identically up to the theta-approximation difference the "
          "paper discusses (end of Section IV-B).")


if __name__ == "__main__":
    main()
