#!/usr/bin/env python3
"""Forward-progress semantics, live: why the Concurrent Octree cannot
run on GPUs without Independent Thread Scheduling.

Runs the paper's Algorithm 4/5 build as virtual threads under three
execution environments:

  1. a CPU (concurrent forward progress)         -> completes
  2. an NVIDIA GPU with ITS (parallel progress)  -> completes
  3. an AMD GPU without ITS (weakly parallel)    -> livelocks, detected

and shows the ``par_unseq`` policy rejecting the atomics outright —
the exact rule ([algorithms.parallel.defns]) that splits the paper's
two strategies.

Run:  python examples/progress_semantics.py
"""

import numpy as np

from repro import ExecutionContext, get_device
from repro.errors import LivelockDetected, VectorizationUnsafeError
from repro.octree.build_concurrent import build_octree_concurrent
from repro.octree.traversal import validate_tree
from repro.stdpar import par_unseq
from repro.stdpar.algorithms import for_each
from repro.stdpar.kernel import kernel_from_functions

N = 128


def try_build(device_key: str, label: str) -> None:
    device = get_device(device_key)
    ctx = ExecutionContext(device=device, backend="reference",
                           on_progress_violation="simulate", warp_width=16)
    x = np.random.default_rng(0).random((N, 3))
    print(f"{label} ({device.name}, progress={device.progress.name}):")
    try:
        pool = build_octree_concurrent(x, bits=8, ctx=ctx)
        validate_tree(pool, N)
        print(f"  completed: {pool.n_nodes} nodes, "
              f"{ctx.counters.lock_retries:.0f} lock retries\n")
    except LivelockDetected as exc:
        print(f"  LIVELOCK: {exc}\n")


def main() -> None:
    print("=== Concurrent Octree BUILDTREE under different schedulers ===\n")
    try_build("genoa", "CPU")
    try_build("h100", "GPU with ITS")
    try_build("mi300x", "GPU without ITS")

    print("=== par_unseq rejects vectorization-unsafe kernels ===\n")
    kernel = kernel_from_functions(
        "locked-insert", batch=lambda idx: None, uses_atomics=True
    )
    try:
        for_each(par_unseq, N, kernel, ExecutionContext())
    except VectorizationUnsafeError as exc:
        print(f"  VectorizationUnsafeError: {exc}")
    print("\nThis is the trade-off of Section IV: the Hilbert BVH uses no")
    print("atomics, so it runs everywhere under par_unseq; the Concurrent")
    print("Octree is faster where par is available, and impossible where")
    print("it is not (paper Fig. 6's missing bars).")


if __name__ == "__main__":
    main()
