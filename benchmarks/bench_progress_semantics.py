"""Section V-B's hang, as a benchmark: the Concurrent Octree build on
schedulers with and without Independent Thread Scheduling.

On the FAIR scheduler (parallel forward progress: CPU / Volta+ GPU) the
starvation-free build completes; on the LOCKSTEP scheduler (weakly
parallel forward progress: AMD/Intel GPU) it livelocks, which the
scheduler detects instead of hanging the machine.  We time how quickly
each outcome is reached and record the lock-retry statistics.
"""

import numpy as np
import pytest

from repro.bench import format_table
from repro.errors import LivelockDetected
from repro.machine import get_device
from repro.octree.build_concurrent import build_octree_concurrent
from repro.stdpar.context import ExecutionContext

N = 256


def _build(device_key: str, simulate: bool):
    ctx = ExecutionContext(
        device=get_device(device_key),
        backend="reference",
        on_progress_violation="simulate" if simulate else "raise",
        warp_width=16,
    )
    x = np.random.default_rng(0).random((N, 3))
    try:
        build_octree_concurrent(x, bits=8, ctx=ctx)
        outcome = "completed"
    except LivelockDetected:
        outcome = "livelock detected"
    return outcome, ctx.counters.lock_retries


@pytest.mark.benchmark(group="progress")
def test_build_with_its(benchmark, emit):
    outcome, retries = benchmark.pedantic(
        _build, args=("h100", False), rounds=1, iterations=1
    )
    assert outcome == "completed"
    emit("progress_its", format_table(
        [{"device": "NV H100-80 (ITS)", "outcome": outcome,
          "lock_retries": retries}],
        title="Concurrent Octree build under parallel forward progress",
    ))


@pytest.mark.benchmark(group="progress")
def test_build_without_its(benchmark, emit):
    outcome, retries = benchmark.pedantic(
        _build, args=("mi300x", True), rounds=1, iterations=1
    )
    assert outcome == "livelock detected"
    emit("progress_no_its", format_table(
        [{"device": "AMD MI300X (no ITS, simulated)", "outcome": outcome,
          "lock_retries": retries}],
        title="Concurrent Octree build under weakly parallel progress "
              "(paper Section V-B: 'reliably caused them to hang')",
    ))
