"""Figure 5: single-core sequential vs single-socket parallel throughput
for the tiny-size galaxy workload (1e4 bodies) on the CPU systems.

Expected shapes (paper Section V-B):
* up to ~40x parallel speedups;
* Octree and BVH outperform the brute-force algorithms;
* All-Pairs outperforms All-Pairs-Col on every CPU.
"""

import pytest

from conftest import MAX_DIRECT
from repro.bench import format_table
from repro.experiments.figures import fig5_rows

N_TINY = 10_000


@pytest.mark.benchmark(group="fig5")
def test_fig5_seq_vs_par(benchmark, emit):
    rows = benchmark.pedantic(
        fig5_rows, kwargs={"n": N_TINY, "max_direct": MAX_DIRECT},
        rounds=1, iterations=1,
    )
    emit("fig5_seq_vs_par", format_table(
        rows,
        columns=["device", "algorithm", "n", "seq_bodies_per_s",
                 "par_bodies_per_s", "speedup"],
        title=f"Figure 5: sequential vs parallel, galaxy N={N_TINY} (CPUs)",
    ))

    by = {(r["device"], r["algorithm"]): r for r in rows}
    devices = {r["device"] for r in rows}
    speedups = [r["speedup"] for r in rows if r["speedup"]]
    assert max(speedups) > 20, "expected up-to-40x class speedups"
    for d in devices:
        assert by[(d, "octree")]["par_bodies_per_s"] > by[(d, "all-pairs")]["par_bodies_per_s"]
        assert by[(d, "bvh")]["par_bodies_per_s"] > by[(d, "all-pairs")]["par_bodies_per_s"]
        assert by[(d, "all-pairs")]["par_bodies_per_s"] > by[(d, "all-pairs-col")]["par_bodies_per_s"]
