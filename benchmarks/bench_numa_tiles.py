"""Section V-B, "GPU NUMA effects": Intel PVC 1550 one tile vs two.

Paper: "the best result for small problems is obtained with 2 tiles,
while the best result for larger problems is obtained with 1 tile,
suggesting that NUMA effects may penalize throughput for larger
problems.  Our measurements show the best result of either one or two
tiles."

We model both configurations (the 2-tile device pays a cross-tile
traversal penalty once irregular traffic exceeds a tile's reach) and
report, per size, both throughputs and the best-of — asserting the
crossover the paper observed.
"""

import pytest

from conftest import MAX_DIRECT
from repro.bench import format_table, project_throughput
from repro.experiments.figures import measure_galaxy_runs
from repro.machine import get_device

SIZES = (10_000, 100_000, 1_000_000)


def sweep():
    one = get_device("pvc1550-1t")
    two = get_device("pvc1550")
    rows = []
    for n in SIZES:
        run = measure_galaxy_runs(n, ("bvh",), max_direct=MAX_DIRECT)["bvh"]
        t1 = project_throughput(run, one)
        t2 = project_throughput(run, two)
        rows.append({
            "n": n,
            "one_tile_bodies_per_s": t1,
            "two_tiles_bodies_per_s": t2,
            "best": "2 tiles" if t2 >= t1 else "1 tile",
        })
    return rows


@pytest.mark.benchmark(group="numa")
def test_pvc_tile_crossover(benchmark, emit):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("numa_tiles", format_table(
        rows, title="PVC 1550: BVH throughput, one tile vs two (Sec. V-B)"
    ))
    # Small problems favour 2 tiles; large problems favour 1 tile.
    assert rows[0]["best"] == "2 tiles"
    assert rows[-1]["best"] == "1 tile"
