"""Section V-A validation experiment: solar-system small bodies.

Paper: 1,039,551 JPL small bodies, one day at dt = 1 hour; L2 error
norm of final positions across implementations < 1e-6; Octree
outperforms BVH by 3.3x on H100.

Here: a synthetic Keplerian population (DESIGN.md substitution), the
same 24 x 1h integration, cross-checked against the exact All-Pairs
reference (stricter than the paper's cross-implementation check), plus
the H100 Octree/BVH throughput ratio projected at the paper's
population size.
"""

import pytest

from conftest import MAX_DIRECT
from repro.bench import format_table
from repro.experiments.validation import PAPER_N, run_validation

N_SCALED = 4000  # documented scale-down of 1,039,551 (see EXPERIMENTS.md)


@pytest.mark.benchmark(group="validation")
def test_validation_accuracy(benchmark, emit):
    res = benchmark.pedantic(
        run_validation, kwargs={"n": N_SCALED, "steps": 24},
        rounds=1, iterations=1,
    )
    emit("validation_solar", res.summary())
    assert res.passed
    assert all(v < 1e-6 for v in res.l2_errors.values())
    assert all(d < 1e-9 for d in res.energy_drift.values())


@pytest.mark.benchmark(group="validation")
def test_validation_h100_ratio(benchmark, emit):
    """Octree/BVH and Octree/two-stage throughput on H100 at the
    paper's N.  Paper: "Our Octree algorithm outperforms BVH by 3.3x,
    and Thüring et al. by 5.2x, on H100" — our two-stage builder
    models Thüring's construction strategy (see DESIGN.md)."""
    from repro.bench import measure_pipeline, project_throughput
    from repro.core.config import SimulationConfig
    from repro.experiments.validation import DT_HOUR
    from repro.machine import get_device
    from repro.workloads.solar import SOLAR_GRAVITY, solar_system

    def run():
        cfg = SimulationConfig(theta=0.5, dt=DT_HOUR, gravity=SOLAR_GRAVITY)
        mk = lambda k: solar_system(k, seed=2024)
        h100 = get_device("h100")
        thr = {
            alg: project_throughput(
                measure_pipeline(mk, alg, PAPER_N, config=cfg,
                                 max_direct=MAX_DIRECT),
                h100,
            )
            for alg in ("octree", "bvh", "octree-2stage")
        }
        return thr

    thr = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio_bvh = thr["octree"] / thr["bvh"]
    ratio_2s = thr["octree"] / thr["octree-2stage"]
    emit("validation_h100_ratio", format_table(
        [{"algorithm": a, "h100_bodies_per_s": v} for a, v in thr.items()]
        + [{"algorithm": "octree/bvh (paper 3.3x)", "h100_bodies_per_s": ratio_bvh},
           {"algorithm": "octree/2stage (paper 5.2x vs Thuering)",
            "h100_bodies_per_s": ratio_2s}],
        title=f"Validation: H100 throughput at N={PAPER_N}",
    ))
    assert 2.0 < ratio_bvh < 5.0
    assert 3.0 < ratio_2s < 12.0
