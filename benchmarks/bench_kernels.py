"""Host-kernel microbenchmarks: real wall-clock times of this
reproduction's vectorized pipeline steps (not modeled device times).

These measure the Python/numpy lockstep kernels themselves, giving the
baseline behind every figure's "host" measurement and tracking
regressions in the implementation.
"""

import numpy as np
import pytest

from repro.bvh.build import build_bvh
from repro.bvh.force import bvh_accelerations
from repro.geometry.aabb import compute_bounding_box, quantize_to_grid
from repro.geometry.hilbert import hilbert_encode
from repro.geometry.morton import morton_encode
from repro.octree.build_vectorized import build_octree_vectorized
from repro.octree.force import octree_accelerations
from repro.octree.multipoles import compute_multipoles_vectorized
from repro.physics.gravity import GravityParams
from repro.workloads import galaxy_collision

N = 4000
PARAMS = GravityParams(softening=0.05)


@pytest.fixture(scope="module")
def system():
    return galaxy_collision(N, seed=0)


@pytest.fixture(scope="module")
def grid(system):
    return quantize_to_grid(system.x, compute_bounding_box(system.x), 16)


@pytest.fixture(scope="module")
def octree(system):
    pool = build_octree_vectorized(system.x)
    compute_multipoles_vectorized(pool, system.x, system.m)
    return pool


@pytest.fixture(scope="module")
def bvh(system):
    return build_bvh(system.x, system.m)


@pytest.mark.benchmark(group="kernels-geometry")
def test_bounding_box(benchmark, system):
    benchmark(compute_bounding_box, system.x)


@pytest.mark.benchmark(group="kernels-geometry")
def test_morton_encode(benchmark, grid):
    benchmark(morton_encode, grid, 16)


@pytest.mark.benchmark(group="kernels-geometry")
def test_hilbert_encode(benchmark, grid):
    benchmark(hilbert_encode, grid, 16)


@pytest.mark.benchmark(group="kernels-build")
def test_octree_build(benchmark, system):
    benchmark(build_octree_vectorized, system.x)


@pytest.mark.benchmark(group="kernels-build")
def test_octree_multipoles(benchmark, system):
    pool = build_octree_vectorized(system.x)
    benchmark(compute_multipoles_vectorized, pool, system.x, system.m)


@pytest.mark.benchmark(group="kernels-build")
def test_bvh_build(benchmark, system):
    benchmark(build_bvh, system.x, system.m)


@pytest.mark.benchmark(group="kernels-force")
def test_octree_force(benchmark, system, octree):
    benchmark.pedantic(
        octree_accelerations, args=(octree, system.x, system.m, PARAMS),
        kwargs={"theta": 0.5}, rounds=2, iterations=1,
    )


@pytest.mark.benchmark(group="kernels-force")
def test_bvh_force(benchmark, bvh):
    benchmark.pedantic(
        bvh_accelerations, args=(bvh, PARAMS), kwargs={"theta": 0.5},
        rounds=2, iterations=1,
    )


@pytest.mark.benchmark(group="kernels-force")
def test_allpairs_force(benchmark, system):
    from repro.allpairs.classic import allpairs_accelerations

    benchmark.pedantic(
        allpairs_accelerations, args=(system.x, system.m, PARAMS),
        rounds=2, iterations=1,
    )
