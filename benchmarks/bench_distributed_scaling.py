"""Distributed scaling: modeled strong + weak scaling over simulated ranks.

Runs the galaxy workload through :class:`repro.distributed.runtime.
DistributedRuntime` at K in {1, 2, 4, 8} ranks and reports, per K:

* **host seconds** — wall clock of this Python reproduction (it plays
  every rank in one process, so host time does NOT shrink with K);
* **model seconds** — the bulk-synchronous step time a real K-rank
  machine would see: ``max`` over ranks of (cost-model compute +
  fabric comm), via :meth:`DistributedReport.model_step_seconds`;
* the per-rank comm/compute split and the load imbalance.

Two sweeps:

* **strong** — fixed total N, speedup(K) = T_model(1) / T_model(K);
* **weak**   — N = n_per_rank * K, efficiency(K) = T_model(1) / T_model(K).

Results are written to ``benchmarks/results/BENCH_distributed_scaling
.json`` in the shared :mod:`repro.bench.record` schema.

Usage::

    python benchmarks/bench_distributed_scaling.py            # full
    python benchmarks/bench_distributed_scaling.py --smoke    # quick CI
    pytest benchmarks/bench_distributed_scaling.py            # smoke

The full run asserts the subsystem target: weak-scaling efficiency
>= 0.7 at 8 ranks.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

import numpy as np

from repro.bench import BenchRecord, format_table, write_bench_json
from repro.core.config import SimulationConfig
from repro.distributed.runtime import DistributedRuntime
from repro.io import config_to_metadata
from repro.machine import get_device
from repro.machine.costmodel import CostModel
from repro.physics.gravity import GravityParams
from repro.stdpar.context import ExecutionContext
from repro.workloads import galaxy_collision

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

THETA = 0.5
RANKS = (1, 2, 4, 8)
DEVICE = "gh200"
#: Steps per measurement: enough for the weighted balancer to observe
#: rank times and rebalance once (rebalance cadence below).
STEPS = 3
REBALANCE_STEPS = 2


def _config(n_ranks: int) -> SimulationConfig:
    return SimulationConfig(
        algorithm="octree", theta=THETA, traversal="grouped",
        gravity=GravityParams(softening=0.05),
        ranks=n_ranks, decomposition="weighted",
        rebalance_steps=REBALANCE_STEPS,
    )


def measure(n: int, n_ranks: int) -> dict:
    """Run STEPS force evaluations at (n, n_ranks); returns metrics."""
    system = galaxy_collision(n, seed=0)
    cfg = _config(n_ranks)
    runtime = DistributedRuntime(cfg, ExecutionContext())
    model = CostModel(get_device(DEVICE))  # no interconnect: fabric owns comm

    t0 = time.perf_counter()
    for _ in range(STEPS):
        runtime.accelerations(system)
    host = (time.perf_counter() - t0) / STEPS

    rep = runtime.last_report
    compute, comm = rep.comm_compute_split(model)
    return {
        "n": n,
        "ranks": n_ranks,
        "config": config_to_metadata(cfg),
        "host_seconds": host,
        "model_seconds": rep.model_step_seconds(model),
        "compute_seconds": [float(c) for c in compute],
        "comm_seconds": [float(c) for c in comm],
        "imbalance": rep.imbalance(model),
        "halo_bytes": float(rep.let_bytes.sum()),
    }


def sweep(n_strong: int, n_per_rank: int, ranks=RANKS) -> list[dict]:
    """Strong sweep at N=n_strong plus weak sweep at N=n_per_rank*K."""
    rows = []
    for mode, sizes in (
        ("strong", [n_strong] * len(ranks)),
        ("weak", [n_per_rank * k for k in ranks]),
    ):
        base = None
        for k, n in zip(ranks, sizes):
            m = measure(n, k)
            if base is None:
                base = m["model_seconds"]
            ratio = base / m["model_seconds"]
            m["mode"] = mode
            # Strong scaling: ideal ratio is K; weak: ideal ratio is 1.
            m["speedup"] = ratio
            m["efficiency"] = ratio / k if mode == "strong" else ratio
            rows.append(m)
    return rows


def _report(rows: list[dict]) -> str:
    view = [
        {
            "mode": r["mode"], "ranks": r["ranks"], "n": r["n"],
            "model_s": r["model_seconds"], "host_s": r["host_seconds"],
            "speedup": r["speedup"], "efficiency": r["efficiency"],
            "imbalance": r["imbalance"],
            "comm_frac": sum(r["comm_seconds"])
            / max(sum(r["comm_seconds"]) + sum(r["compute_seconds"]), 1e-300),
        }
        for r in rows
    ]
    return format_table(
        view,
        title=f"Distributed scaling, galaxy, theta={THETA}, "
              f"device={DEVICE} (model seconds; host plays all ranks)",
    )


def _records(rows: list[dict]) -> list[BenchRecord]:
    return [
        BenchRecord(
            workload="galaxy", n=r["n"], config=r["config"],
            host_seconds=r["host_seconds"], model_seconds=r["model_seconds"],
            extra={
                "mode": r["mode"], "ranks": r["ranks"],
                "speedup": r["speedup"], "efficiency": r["efficiency"],
                "imbalance": r["imbalance"], "halo_bytes": r["halo_bytes"],
                "compute_seconds": r["compute_seconds"],
                "comm_seconds": r["comm_seconds"],
            },
        )
        for r in rows
    ]


def run(n_strong: int, n_per_rank: int, *, min_weak_efficiency: float | None,
        out_dir: pathlib.Path = RESULTS_DIR) -> int:
    rows = sweep(n_strong, n_per_rank)
    print(_report(rows))
    path = write_bench_json(
        "distributed_scaling", _records(rows), out_dir=out_dir,
        meta={"theta": THETA, "device": DEVICE, "steps": STEPS},
    )
    print(f"[saved to {path}]")

    status = 0
    weak8 = [r for r in rows if r["mode"] == "weak" and r["ranks"] == max(RANKS)]
    if min_weak_efficiency is not None and weak8:
        eff = weak8[0]["efficiency"]
        if eff < min_weak_efficiency:
            print(f"FAIL: weak-scaling efficiency {eff:.3f} at "
                  f"{max(RANKS)} ranks < required {min_weak_efficiency}")
            status = 1
        else:
            print(f"OK: weak-scaling efficiency {eff:.3f} >= "
                  f"{min_weak_efficiency} at {max(RANKS)} ranks")
    return status


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="small, fast run (no efficiency floor; CI sanity)")
    ap.add_argument("--n", type=int, default=None, help="strong-scaling N")
    ap.add_argument("--n-per-rank", type=int, default=None)
    ap.add_argument("--out-dir", type=pathlib.Path, default=RESULTS_DIR)
    args = ap.parse_args(argv)
    if args.smoke:
        return run(args.n or 1024, args.n_per_rank or 256,
                   min_weak_efficiency=None, out_dir=args.out_dir)
    return run(args.n or 8000, args.n_per_rank or 2000,
               min_weak_efficiency=0.7, out_dir=args.out_dir)


try:
    import pytest
except ImportError:  # pragma: no cover - pytest always present in CI
    pytest = None

if pytest is not None:

    @pytest.mark.benchmark(group="distributed")
    def test_distributed_scaling_smoke(benchmark, emit, results_dir):
        rows = benchmark.pedantic(lambda: sweep(1024, 256, ranks=(1, 2, 4)),
                                  rounds=1, iterations=1)
        emit("distributed_scaling_smoke", _report(rows))
        write_bench_json("distributed_scaling", _records(rows),
                         out_dir=results_dir,
                         meta={"theta": THETA, "device": DEVICE, "smoke": True})
        by = {(r["mode"], r["ranks"]): r for r in rows}
        # Tiny smoke sizes are fixed-overhead bound in the model (the
        # per-rank tree-build floor); just require scaling to show up.
        assert by[("strong", 4)]["speedup"] > 1.2
        assert by[("weak", 4)]["efficiency"] > 0.4
        for r in rows:
            assert np.isfinite(r["model_seconds"]) and r["model_seconds"] > 0


if __name__ == "__main__":
    sys.exit(main())
