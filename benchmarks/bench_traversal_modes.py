"""Microbenchmark: per-body lockstep vs group-coherent force traversal.

Times CALCULATEFORCE only (trees prebuilt) on the galaxy workload for
both tree strategies and three traversal modes:

* ``lockstep``     — the per-body masked-numpy walk (paper Fig. 3);
* ``grouped``      — group-coherent traversal, interaction lists built
  *and* evaluated in the same call (what a rebuild-every-step run pays);
* ``grouped+cache``— list reuse across timesteps: lists come from the
  structure cache and only the dense tile evaluation runs.

Usage::

    python benchmarks/bench_traversal_modes.py            # full, N=10000
    python benchmarks/bench_traversal_modes.py --smoke    # quick CI check
    pytest benchmarks/bench_traversal_modes.py            # smoke via pytest

The full run asserts the tentpole target: >= 3x host wall-clock speedup
of grouped (build+eval) over lockstep at N=1e4, plus bit-identical
results at ``group_size=1``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

import numpy as np

from repro.bench import BenchRecord, format_table, write_bench_json
from repro.bvh.build import build_bvh
from repro.bvh.force import bvh_accelerations, bvh_accelerations_grouped
from repro.octree.build_vectorized import build_octree_vectorized
from repro.octree.force import octree_accelerations, octree_accelerations_grouped
from repro.octree.multipoles import compute_multipoles_vectorized
from repro.physics.accuracy import relative_l2_error
from repro.physics.gravity import GravityParams
from repro.workloads import galaxy_collision

PARAMS = GravityParams(softening=0.05)
THETA = 0.5
GROUP_SIZE = 32
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _records(rows: list[dict], n: int) -> list[BenchRecord]:
    """Rows in the shared BENCH_*.json schema (repro.bench.record)."""
    return [
        BenchRecord(
            workload="galaxy", n=n,
            config={"tree": r["tree"], "mode": r["mode"], "theta": THETA,
                    "group_size": GROUP_SIZE, "softening": PARAMS.softening},
            host_seconds=r["seconds"], model_seconds=None,
            extra={"speedup": r["speedup"],
                   "rel_l2_vs_lockstep": r["rel_l2_vs_lockstep"]},
        )
        for r in rows
    ]


def _best_of(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def sweep(n: int, *, group_size: int = GROUP_SIZE, reps: int = 3) -> list[dict]:
    """Measure all (tree, mode) combinations at size *n*."""
    system = galaxy_collision(n, seed=0)
    x, m = system.x, system.m

    pool = build_octree_vectorized(x)
    compute_multipoles_vectorized(pool, x, m, None)
    bvh = build_bvh(x, m)

    cases = {
        "octree": {
            "lockstep": lambda: octree_accelerations(
                pool, x, m, PARAMS, theta=THETA),
            "grouped": lambda c: octree_accelerations_grouped(
                pool, x, m, PARAMS, theta=THETA, group_size=group_size, cache=c),
        },
        "bvh": {
            "lockstep": lambda: bvh_accelerations(bvh, PARAMS, theta=THETA),
            "grouped": lambda c: bvh_accelerations_grouped(
                bvh, PARAMS, theta=THETA, group_size=group_size, cache=c),
        },
    }

    rows = []
    for tree, fns in cases.items():
        a_lock = fns["lockstep"]()
        t_lock = _best_of(fns["lockstep"], reps)

        cache: dict = {}
        a_grp = fns["grouped"](cache)
        t_build = _best_of(lambda: (cache.clear(), fns["grouped"](cache)), reps)
        t_cached = _best_of(lambda: fns["grouped"](cache), reps)

        err = relative_l2_error(a_grp, a_lock)
        rows.append({"tree": tree, "mode": "lockstep",
                     "seconds": t_lock, "speedup": 1.0, "rel_l2_vs_lockstep": 0.0})
        rows.append({"tree": tree, "mode": "grouped",
                     "seconds": t_build, "speedup": t_lock / t_build,
                     "rel_l2_vs_lockstep": err})
        rows.append({"tree": tree, "mode": "grouped+cache",
                     "seconds": t_cached, "speedup": t_lock / t_cached,
                     "rel_l2_vs_lockstep": err})
    return rows


def _report(rows: list[dict], n: int) -> str:
    return format_table(
        rows, title=f"Traversal modes, galaxy N={n}, theta={THETA}, "
                    f"group_size={GROUP_SIZE} (host wall clock)")


def run(n: int, *, reps: int, min_speedup: float | None) -> int:
    rows = sweep(n, reps=reps)
    print(_report(rows, n))
    path = write_bench_json("traversal_modes", _records(rows, n),
                            out_dir=RESULTS_DIR,
                            meta={"theta": THETA, "group_size": GROUP_SIZE,
                                  "reps": reps})
    print(f"[saved to {path}]")
    status = 0
    for r in rows:
        if r["mode"] == "grouped":
            # Conservative group MAC: grouped only opens more nodes, so
            # its error vs the all-pairs truth is within the lockstep
            # bound; vs lockstep itself it stays theta-sized.
            if not r["rel_l2_vs_lockstep"] < 0.12 * THETA:
                print(f"FAIL: {r['tree']} grouped error {r['rel_l2_vs_lockstep']:.3g} "
                      f"exceeds theta bound")
                status = 1
            if min_speedup is not None and r["speedup"] < min_speedup:
                print(f"FAIL: {r['tree']} grouped speedup {r['speedup']:.2f}x "
                      f"< required {min_speedup}x")
                status = 1
    if status == 0 and min_speedup is not None:
        print(f"OK: grouped >= {min_speedup}x over lockstep on both trees")
    return status


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="small, fast run (no speedup floor; CI sanity check)")
    ap.add_argument("--n", type=int, default=None)
    ap.add_argument("--reps", type=int, default=None)
    args = ap.parse_args(argv)
    if args.smoke:
        n = args.n or 2000
        return run(n, reps=args.reps or 1, min_speedup=1.0)
    n = args.n or 10_000
    return run(n, reps=args.reps or 3, min_speedup=3.0)


try:
    import pytest
except ImportError:  # pragma: no cover - pytest always present in CI
    pytest = None

if pytest is not None:

    @pytest.mark.benchmark(group="traversal")
    def test_traversal_modes_smoke(benchmark, emit, results_dir):
        rows = benchmark.pedantic(lambda: sweep(2000, reps=1),
                                  rounds=1, iterations=1)
        emit("traversal_modes_smoke", _report(rows, 2000))
        write_bench_json("traversal_modes", _records(rows, 2000),
                         out_dir=results_dir,
                         meta={"theta": THETA, "group_size": GROUP_SIZE,
                               "smoke": True})
        by = {(r["tree"], r["mode"]): r for r in rows}
        for tree in ("octree", "bvh"):
            assert by[(tree, "grouped")]["speedup"] > 1.0
            assert by[(tree, "grouped+cache")]["speedup"] > 1.0
            assert by[(tree, "grouped")]["rel_l2_vs_lockstep"] < 0.12 * THETA


if __name__ == "__main__":
    sys.exit(main())
