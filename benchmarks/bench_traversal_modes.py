"""Microbenchmark: per-body lockstep vs group-coherent force traversal.

Times CALCULATEFORCE only (trees prebuilt) on the galaxy workload for
both tree strategies, across the traversal modes and — with lists
cached — the three list evaluators:

* ``lockstep``     — the per-body masked-numpy walk (paper Fig. 3);
* ``grouped``      — group-coherent traversal, interaction lists built
  *and* evaluated in the same call (what a rebuild-every-step run pays);
* ``tile+cache``   — cached lists, per-group dense-tile evaluation (the
  deterministic reference kernel);
* ``gemm+cache``   — cached lists, per-group BLAS evaluation;
* ``flat+cache``   — cached lists, flattened SoA batch evaluation with
  the near field deduped Newton's-third-law style (the default ``auto``
  pick for multi-body groups).

Usage::

    python benchmarks/bench_traversal_modes.py            # full, N=10000
    python benchmarks/bench_traversal_modes.py --smoke    # quick CI check
    pytest benchmarks/bench_traversal_modes.py            # smoke via pytest

The full run asserts the tentpole targets: >= 3x host wall-clock
speedup of grouped (build+eval) over lockstep at N=1e4, >= 1.8x of
flat over tile on the cached-list evaluation (measured ~2-2.9x; the
floor leaves jitter margin for a wall-clock assert), n3l dedup ratio
>= 1.2, and flat matching tile within 1e-12 relative error.  (Flat does *not* beat
gemm on this host — OpenBLAS tiles sit in L2 at ~13 ns/pair — so the
flat/gemm ratio is reported, not asserted; see EXPERIMENTS.md for the
hardware economics.  The n3l dedup ratio is geometry-bound near ~1.3 on
the galaxy workload: only mutually-near group pairs dedupe, and the
one-sided MAC emits asymmetric near lists for unequal group extents.)

Wall-clock-dependent ratios (speedups) are nested under ``extra.host``
so :mod:`check_bench_regression` — which compares every *numeric*
``extra`` — only pins the deterministic metrics (model seconds,
interaction counts, errors, dedup ratio).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

import numpy as np

from repro.bench import BenchRecord, format_table, write_bench_json
from repro.bvh.build import build_bvh
from repro.bvh.force import bvh_accelerations, bvh_accelerations_grouped
from repro.machine.catalog import get_device
from repro.machine.costmodel import CostModel
from repro.obs import MetricsRegistry
from repro.octree.build_vectorized import build_octree_vectorized
from repro.octree.force import octree_accelerations, octree_accelerations_grouped
from repro.octree.multipoles import compute_multipoles_vectorized
from repro.physics.accuracy import relative_l2_error
from repro.physics.gravity import GravityParams
from repro.stdpar.context import ExecutionContext
from repro.workloads import galaxy_collision

PARAMS = GravityParams(softening=0.05)
THETA = 0.5
GROUP_SIZE = 32
DEVICE = "gh200"
EVAL_MODES = ("tile", "gemm", "flat")
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _metrics_block(dedup_ratio: float) -> dict:
    """The ``repro-bench-v2`` metrics block carrying the dedup ratio."""
    reg = MetricsRegistry()
    reg.gauge("n3l_dedup_ratio").set(dedup_ratio)
    reg.histogram("n3l_dedup_ratio").observe(dedup_ratio)
    return reg.metrics_block()


def _records(rows: list[dict], n: int) -> list[BenchRecord]:
    """Rows in the shared BENCH_*.json schema (repro.bench.record)."""
    out = []
    for r in rows:
        extra: dict = {"rel_l2_vs_lockstep": r["rel_l2_vs_lockstep"],
                       "host": {"speedup": r["speedup"]}}
        for k in ("interactions", "rel_l2_vs_tile", "n3l_dedup_ratio"):
            if k in r:
                extra[k] = r[k]
        out.append(BenchRecord(
            workload="galaxy", n=n,
            config={"tree": r["tree"], "mode": r["mode"], "theta": THETA,
                    "group_size": GROUP_SIZE, "softening": PARAMS.softening},
            host_seconds=r["seconds"], model_seconds=r.get("model_seconds"),
            extra=extra,
            metrics=(_metrics_block(r["n3l_dedup_ratio"])
                     if "n3l_dedup_ratio" in r else None),
        ))
    return out


def _best_of(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def sweep(n: int, *, group_size: int = GROUP_SIZE, reps: int = 3) -> list[dict]:
    """Measure all (tree, mode) combinations at size *n*."""
    system = galaxy_collision(n, seed=0)
    x, m = system.x, system.m

    pool = build_octree_vectorized(x)
    compute_multipoles_vectorized(pool, x, m, None)
    bvh = build_bvh(x, m)
    model = CostModel(get_device(DEVICE))

    def octree_grouped(c, mode="auto", ctx=None):
        return octree_accelerations_grouped(
            pool, x, m, PARAMS, theta=THETA, group_size=group_size,
            cache=c, eval_mode=mode, ctx=ctx)

    def bvh_grouped(c, mode="auto", ctx=None):
        return bvh_accelerations_grouped(
            bvh, PARAMS, theta=THETA, group_size=group_size,
            cache=c, eval_mode=mode, ctx=ctx)

    cases = {
        "octree": (lambda: octree_accelerations(pool, x, m, PARAMS,
                                                theta=THETA), octree_grouped),
        "bvh": (lambda: bvh_accelerations(bvh, PARAMS, theta=THETA),
                bvh_grouped),
    }

    rows = []
    for tree, (lockstep, grouped) in cases.items():
        a_lock = lockstep()
        t_lock = _best_of(lockstep, reps)

        # No cache: what a rebuild-every-step run pays per step (auto
        # resolves to gemm — flat's epoch expansion can't amortize).
        a_grp = grouped(None)
        t_build = _best_of(lambda: grouped(None), reps)
        cache: dict = {}

        err = relative_l2_error(a_grp, a_lock)
        rows.append({"tree": tree, "mode": "lockstep",
                     "seconds": t_lock, "speedup": 1.0,
                     "rel_l2_vs_lockstep": 0.0})
        rows.append({"tree": tree, "mode": "grouped",
                     "seconds": t_build, "speedup": t_lock / t_build,
                     "rel_l2_vs_lockstep": err})

        # Cached-list evaluators.  The warm-up call populates the
        # cached flat/self-pair precomputes; the steady ctx pass then
        # yields the per-step counters the cost model prices.
        accs: dict[str, np.ndarray] = {}
        for mode in EVAL_MODES:
            grouped(cache, mode)                       # warm precomputes
            steady = ExecutionContext()
            accs[mode] = grouped(cache, mode, steady)
            c = steady.counters
            row = {
                "tree": tree, "mode": f"{mode}+cache",
                "seconds": _best_of(lambda: grouped(cache, mode), reps),
                "model_seconds": model.step_time(c).total,
                "interactions": float(c.list_eval_interactions),
                "rel_l2_vs_lockstep": relative_l2_error(accs[mode], a_lock),
            }
            row["speedup"] = t_lock / row["seconds"]
            if mode == "flat":
                row["rel_l2_vs_tile"] = relative_l2_error(
                    accs["flat"], accs["tile"])
                row["n3l_dedup_ratio"] = (
                    c.near_pairs_naive / c.near_pairs_evaluated)
            rows.append(row)
    return rows


def _report(rows: list[dict], n: int) -> str:
    return format_table(
        rows, title=f"Traversal modes, galaxy N={n}, theta={THETA}, "
                    f"group_size={GROUP_SIZE} (host wall clock)")


def _by(rows: list[dict]) -> dict:
    return {(r["tree"], r["mode"]): r for r in rows}


def run(n: int, *, reps: int, min_speedup: float | None,
        min_flat_vs_tile: float | None, min_dedup: float) -> int:
    rows = sweep(n, reps=reps)
    print(_report(rows, n))
    path = write_bench_json("traversal_modes", _records(rows, n),
                            out_dir=RESULTS_DIR,
                            meta={"theta": THETA, "group_size": GROUP_SIZE,
                                  "device": DEVICE, "reps": reps})
    print(f"[saved to {path}]")
    status = 0
    by = _by(rows)
    for r in rows:
        if r["mode"] == "grouped":
            # Conservative group MAC: grouped only opens more nodes, so
            # its error vs the all-pairs truth is within the lockstep
            # bound; vs lockstep itself it stays theta-sized.
            if not r["rel_l2_vs_lockstep"] < 0.12 * THETA:
                print(f"FAIL: {r['tree']} grouped error "
                      f"{r['rel_l2_vs_lockstep']:.3g} exceeds theta bound")
                status = 1
            if min_speedup is not None and r["speedup"] < min_speedup:
                print(f"FAIL: {r['tree']} grouped speedup {r['speedup']:.2f}x "
                      f"< required {min_speedup}x")
                status = 1
    for tree in ("octree", "bvh"):
        flat = by[(tree, "flat+cache")]
        tile = by[(tree, "tile+cache")]
        gemm = by[(tree, "gemm+cache")]
        vs_tile = tile["seconds"] / flat["seconds"]
        vs_gemm = gemm["seconds"] / flat["seconds"]
        print(f"{tree}: flat vs tile {vs_tile:.2f}x, vs gemm {vs_gemm:.2f}x "
              f"(host), n3l dedup {flat['n3l_dedup_ratio']:.3f}, "
              f"rel L2 vs tile {flat['rel_l2_vs_tile']:.2e}")
        if not flat["rel_l2_vs_tile"] < 1e-12:
            print(f"FAIL: {tree} flat deviates from tile by "
                  f"{flat['rel_l2_vs_tile']:.3g} (>1e-12)")
            status = 1
        if min_flat_vs_tile is not None and vs_tile < min_flat_vs_tile:
            print(f"FAIL: {tree} flat only {vs_tile:.2f}x over tile "
                  f"(required {min_flat_vs_tile}x)")
            status = 1
        if flat["n3l_dedup_ratio"] < min_dedup:
            print(f"FAIL: {tree} n3l dedup ratio "
                  f"{flat['n3l_dedup_ratio']:.3f} < required {min_dedup}")
            status = 1
    if status == 0 and min_speedup is not None:
        msg = f"OK: grouped >= {min_speedup}x over lockstep"
        if min_flat_vs_tile is not None:
            msg += f", flat >= {min_flat_vs_tile}x over tile"
        print(msg + " on both trees")
    return status


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="small, fast run (no speedup floor; CI sanity check)")
    ap.add_argument("--n", type=int, default=None)
    ap.add_argument("--reps", type=int, default=None)
    args = ap.parse_args(argv)
    if args.smoke:
        n = args.n or 2000
        return run(n, reps=args.reps or 1, min_speedup=1.0,
                   min_flat_vs_tile=None, min_dedup=1.1)
    n = args.n or 10_000
    return run(n, reps=args.reps or 3, min_speedup=3.0,
               min_flat_vs_tile=1.8, min_dedup=1.2)


try:
    import pytest
except ImportError:  # pragma: no cover - pytest always present in CI
    pytest = None

if pytest is not None:

    @pytest.mark.benchmark(group="traversal")
    def test_traversal_modes_smoke(benchmark, emit, results_dir):
        rows = benchmark.pedantic(lambda: sweep(2000, reps=1),
                                  rounds=1, iterations=1)
        emit("traversal_modes_smoke", _report(rows, 2000))
        write_bench_json("traversal_modes", _records(rows, 2000),
                         out_dir=results_dir,
                         meta={"theta": THETA, "group_size": GROUP_SIZE,
                               "device": DEVICE, "smoke": True})
        by = _by(rows)
        for tree in ("octree", "bvh"):
            assert by[(tree, "grouped")]["speedup"] > 1.0
            assert by[(tree, "grouped")]["rel_l2_vs_lockstep"] < 0.12 * THETA
            flat = by[(tree, "flat+cache")]
            assert flat["rel_l2_vs_tile"] < 1e-12
            assert flat["n3l_dedup_ratio"] > 1.1
            assert flat["speedup"] > 1.0


if __name__ == "__main__":
    sys.exit(main())
