"""Complexity scaling: measured exponents of the four algorithms.

The paper's framing rests on the O(N log N) vs O(N²) gap ("...with
O(N log N) time complexity in theory, though not always in practice
[13]").  This bench fits measured per-step work over a size sweep and
reports the empirical exponents: the brute-force algorithms must be
~2, the tree algorithms ~1 + epsilon (N log N reads as a local power
law slightly above linear), with the tree build also near-linear.
"""

import numpy as np
import pytest

from repro.bench import format_table
from repro.bench.extrapolate import fit_power_law
from repro.experiments.figures import measure_galaxy_runs

SIZES = (1000, 2000, 4000, 8000)


def sweep():
    per_alg: dict[str, dict[int, float]] = {}
    build_work: dict[int, float] = {}
    for n in SIZES:
        runs = measure_galaxy_runs(
            n, ("all-pairs", "all-pairs-col", "octree", "bvh"), max_direct=8000
        )
        for alg, r in runs.items():
            c = r.counters.total()
            # representative work metric: flops for brute force,
            # traversal steps + flops for trees
            per_alg.setdefault(alg, {})[n] = c.flops + 50.0 * c.traversal_steps
        build_work[n] = (
            runs["octree"].counters.step("build_tree").bytes_total
        )

    rows = []
    ns = np.array(SIZES, dtype=float)
    for alg, work in per_alg.items():
        ys = np.array([work[n] for n in SIZES])
        _, b = fit_power_law(ns, ys)
        rows.append({"metric": f"{alg} total work", "fitted_exponent": round(b, 3)})
    _, b_build = fit_power_law(ns, np.array([build_work[n] for n in SIZES]))
    rows.append({"metric": "octree build bytes", "fitted_exponent": round(b_build, 3)})
    return rows


@pytest.mark.benchmark(group="scaling")
def test_complexity_exponents(benchmark, emit):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("complexity_scaling", format_table(
        rows, title=f"Measured complexity exponents over N={SIZES}"
    ))
    by = {r["metric"]: r["fitted_exponent"] for r in rows}
    # Brute force: quadratic.
    assert 1.9 < by["all-pairs total work"] < 2.1
    assert 1.9 < by["all-pairs-col total work"] < 2.1
    # Trees: clearly sub-quadratic, but — exactly as the paper hedges,
    # "O(N log N) time complexity in theory, though not always in
    # practice [13]" — the measured exponent sits above the ideal
    # 1 + eps at these sizes (deepening galaxy cores, and for the BVH
    # overlapping boxes, inflate the per-body traversal).
    assert 1.0 < by["octree total work"] < 1.5
    assert 1.0 < by["bvh total work"] < 1.7
    assert by["octree total work"] <= by["bvh total work"]
    # Tree construction is near-linear.
    assert 0.9 < by["octree build bytes"] < 1.3
