"""Validate a ``--trace-out`` Chrome trace file against repro-trace-v1.

Checks that the payload is a Perfetto-loadable trace-event JSON object
carrying the ``repro-trace-v1`` schema tag, that every event is one of
the emitted phases (``M`` metadata, ``X`` complete span, ``i`` instant)
with the keys and types those phases require, that every referenced
lane (``tid``) has a ``thread_name`` metadata event, and — with
``--require-ranks K`` — that the per-rank lanes ``rank 0 .. rank K-1``
are present and carry spans (the distributed runtime's timelines).

Usage::

    python benchmarks/check_trace_schema.py TRACE.json [--require-ranks K]

Exit status 1 on any problem; 0 otherwise.  CI runs this on the trace
the distributed smoke run records.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

SCHEMA = "repro-trace-v1"

#: Required (key, type) pairs per event phase.
_REQUIRED = {
    "M": (("pid", int), ("tid", int), ("name", str), ("args", dict)),
    "X": (("pid", int), ("tid", int), ("name", str), ("cat", str),
          ("ts", (int, float)), ("dur", (int, float)), ("args", dict)),
    "i": (("pid", int), ("tid", int), ("name", str), ("ts", (int, float)),
          ("s", str), ("args", dict)),
}


def check_trace(payload: dict) -> list[str]:
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["payload is not a JSON object"]
    schema = (payload.get("otherData") or {}).get("schema")
    if schema != SCHEMA:
        problems.append(f"otherData.schema is {schema!r}, expected {SCHEMA!r}")
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        return problems + ["traceEvents missing or empty"]

    lane_names: dict[int, str] = {}
    used_lanes: set[int] = set()
    span_lanes: set[int] = set()
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = ev.get("ph")
        req = _REQUIRED.get(ph)
        if req is None:
            problems.append(f"event {i}: unknown phase {ph!r}")
            continue
        for key, typ in req:
            if key not in ev:
                problems.append(f"event {i} (ph={ph}): missing key {key!r}")
            elif not isinstance(ev[key], typ) or isinstance(ev[key], bool):
                problems.append(f"event {i} (ph={ph}): {key!r} has type "
                                f"{type(ev[key]).__name__}")
        tid = ev.get("tid")
        if not isinstance(tid, int):
            continue
        if ph == "M":
            if ev.get("name") == "thread_name":
                lane_names[tid] = ev.get("args", {}).get("name", "")
        else:
            used_lanes.add(tid)
            if ph == "X":
                span_lanes.add(tid)
                if ev.get("dur", 0) < 0:
                    problems.append(f"event {i}: negative duration")
    for tid in sorted(used_lanes - set(lane_names)):
        problems.append(f"lane {tid} has events but no thread_name metadata")
    return problems


def check_ranks(payload: dict, n_ranks: int) -> list[str]:
    problems: list[str] = []
    events = payload.get("traceEvents") or []
    names = {ev.get("args", {}).get("name"): ev.get("tid")
             for ev in events
             if isinstance(ev, dict) and ev.get("ph") == "M"
             and ev.get("name") == "thread_name"}
    span_lanes = {ev.get("tid") for ev in events
                  if isinstance(ev, dict) and ev.get("ph") == "X"}
    for r in range(n_ranks):
        lane = names.get(f"rank {r}")
        if lane is None:
            problems.append(f"no lane named 'rank {r}'")
        elif lane not in span_lanes:
            problems.append(f"lane 'rank {r}' (tid {lane}) has no spans")
    return problems


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", type=pathlib.Path)
    ap.add_argument("--require-ranks", type=int, default=0,
                    dest="require_ranks", metavar="K",
                    help="additionally require populated lanes rank 0..K-1")
    args = ap.parse_args(argv)

    try:
        payload = json.loads(args.trace.read_text())
    except (OSError, ValueError) as exc:
        print(f"TRACE CHECK FAILED: cannot load {args.trace}: {exc}")
        return 1
    problems = check_trace(payload)
    if args.require_ranks > 0:
        problems += check_ranks(payload, args.require_ranks)
    if problems:
        print(f"TRACE CHECK FAILED ({len(problems)} problem(s)):")
        for p in problems:
            print(f"  - {p}")
        return 1
    n_events = len(payload.get("traceEvents", []))
    print(f"trace schema OK: {args.trace} ({n_events} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
