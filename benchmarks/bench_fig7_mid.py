"""Figure 7: algorithm throughput for the mid-size galaxy workload
(1e6 bodies).

Expected shapes: the trends of Fig. 6 extend to 1e6 — except on A100,
where the Octree/BVH ordering *reverses* relative to the small size
(the build's synchronizing-atomic latency amortizes while the BVH's
fatter traversal keeps scaling), the effect the paper attributes to the
Ampere partitioned L2.
"""

import pytest

from conftest import MAX_DIRECT
from repro.bench import format_table
from repro.experiments.figures import fig7_rows

N_MID = 1_000_000


@pytest.mark.benchmark(group="fig7")
def test_fig7_mid(benchmark, emit):
    rows = benchmark.pedantic(
        fig7_rows, kwargs={"n": N_MID, "max_direct": MAX_DIRECT},
        rounds=1, iterations=1,
    )
    emit("fig7_mid", format_table(
        rows,
        columns=["device", "kind", "algorithm", "n", "bodies_per_s"],
        title=f"Figure 7: algorithm throughput, galaxy N={N_MID}",
    ))

    thr = {(r["device"], r["algorithm"]): r["bodies_per_s"] for r in rows}

    # Mid-size reversal on Ampere; Hopper keeps Octree on top.
    assert thr[("NV A100-80", "octree")] > thr[("NV A100-80", "bvh")]
    assert thr[("NV H100-80", "octree")] > thr[("NV H100-80", "bvh")]

    # Trees dominate brute force by a wide margin at 1e6.
    for dev in ("NV GH200-480", "AMD 9654 (Genoa)"):
        assert thr[(dev, "octree")] > 10 * thr[(dev, "all-pairs")]

    # Octree still absent from AMD/Intel GPUs.
    assert thr[("AMD MI300X", "octree")] is None
    assert thr[("AMD MI300X", "bvh")] is not None
