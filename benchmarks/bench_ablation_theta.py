"""Ablation: the distance threshold (opening angle) theta.

The paper fixes theta = 0.5 and notes that the Octree and BVH interpret
it differently (end of Section IV-B).  This ablation sweeps theta and
records, for both strategies, the accuracy against the exact reference
and the traversal work — quantifying that interpretation gap: at equal
theta the BVH does comparable work but delivers different accuracy, so
equal-accuracy comparisons shift the threshold.
"""

import numpy as np
import pytest

from repro.bench import format_table
from repro.bvh.build import build_bvh
from repro.bvh.force import bvh_accelerations
from repro.octree.build_vectorized import build_octree_vectorized
from repro.octree.force import octree_accelerations
from repro.octree.multipoles import compute_multipoles_vectorized
from repro.physics.gravity import GravityParams, pairwise_accelerations
from repro.stdpar.context import ExecutionContext
from repro.workloads import galaxy_collision

N = 3000
THETAS = (0.2, 0.35, 0.5, 0.75, 1.0)
PARAMS = GravityParams(softening=0.05)


def sweep():
    system = galaxy_collision(N, seed=0)
    ref = pairwise_accelerations(system.x, system.m, PARAMS)
    scale = np.abs(ref).max()

    pool = build_octree_vectorized(system.x)
    compute_multipoles_vectorized(pool, system.x, system.m)
    bvh = build_bvh(system.x, system.m)

    rows = []
    for theta in THETAS:
        for name in ("octree", "bvh"):
            ctx = ExecutionContext()
            if name == "octree":
                acc = octree_accelerations(pool, system.x, system.m, PARAMS,
                                           theta=theta, ctx=ctx)
            else:
                acc = bvh_accelerations(bvh, PARAMS, theta=theta, ctx=ctx)
            rows.append({
                "theta": theta, "strategy": name,
                "max_rel_error": float(np.abs(acc - ref).max() / scale),
                "visits_per_body": ctx.counters.traversal_steps / N,
                "interactions": ctx.counters.special_flops / 2.0,
            })
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_theta(benchmark, emit):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("ablation_theta", format_table(
        rows, title=f"Ablation: theta sweep, galaxy N={N}"
    ))

    for name in ("octree", "bvh"):
        sub = [r for r in rows if r["strategy"] == name]
        errs = [r["max_rel_error"] for r in sub]
        visits = [r["visits_per_body"] for r in sub]
        # accuracy degrades and work shrinks monotonically with theta
        assert all(a <= b * 1.05 for a, b in zip(errs, errs[1:]))
        assert all(a >= b for a, b in zip(visits, visits[1:]))

    # The interpretation gap: at the same theta the two strategies
    # produce measurably different accuracy.
    for theta in THETAS:
        pair = {r["strategy"]: r["max_rel_error"] for r in rows
                if r["theta"] == theta}
        assert pair["octree"] != pytest.approx(pair["bvh"], rel=0.05)
