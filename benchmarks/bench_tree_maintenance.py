"""Microbenchmark: amortized tree-maintenance cost, rebuild vs refit.

Runs the full time-integration loop on the galaxy workload for each
tree strategy under the three ``tree_update`` policies and splits the
cost-model's per-phase time into *maintenance* (encode + sort +
build_tree + refit) and everything else:

* ``rebuild`` — the baseline: encode, sort and build every step;
* ``refit``   — refit whenever the epoch's curve order still holds,
  falling back to a rebuild on disorder/drift violations;
* ``auto``    — the cost-model policy that picks per step from the
  measured build/refit/traverse split.

Times are the deterministic cost-model projection on a pinned device
(GH200) so the bench is reproducible across hosts; host wall clock is
recorded alongside for reference.

Usage::

    python benchmarks/bench_tree_maintenance.py            # full, N=10000
    python benchmarks/bench_tree_maintenance.py --smoke    # quick CI check
    pytest benchmarks/bench_tree_maintenance.py            # smoke via pytest

The full run asserts the tentpole target: >= 2x reduction in amortized
per-step maintenance time with ``auto`` vs ``rebuild`` at N=1e4, force
error within the cached-list theta bound, and bit-exact zero-drift
refit.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

import numpy as np

from repro.bench import BenchRecord, format_table, write_bench_json
from repro.core.config import SimulationConfig
from repro.core.simulation import Simulation
from repro.machine import get_device
from repro.machine.costmodel import CostModel
from repro.physics.accuracy import relative_l2_error
from repro.physics.bodies import BodySystem
from repro.physics.gravity import GravityParams
from repro.stdpar.context import ExecutionContext
from repro.workloads import galaxy_collision

PARAMS = GravityParams(softening=0.05)
THETA = 0.5
GROUP_SIZE = 32
DT = 1e-3
DEVICE = "gh200"
MODES = ("rebuild", "refit", "auto")
TREES = ("bvh", "octree")
#: The phases the tentpole amortizes (ISSUE acceptance metric).
MAINT_PHASES = ("encode", "sort", "build_tree", "refit")
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _config(tree: str, mode: str) -> SimulationConfig:
    return SimulationConfig(
        algorithm=tree, theta=THETA, dt=DT, gravity=PARAMS,
        traversal="grouped", group_size=GROUP_SIZE, tree_update=mode,
    )


def _run_mode(tree: str, mode: str, n: int, steps: int) -> dict:
    system = galaxy_collision(n, seed=0)
    ctx = ExecutionContext(get_device(DEVICE))
    sim = Simulation(system, _config(tree, mode), ctx=ctx)
    t0 = time.perf_counter()
    rep = sim.run(steps)
    host = time.perf_counter() - t0
    model = CostModel(get_device(DEVICE))
    times = model.step_times(rep.counters)
    maint = sum(times.get(p, 0.0) for p in MAINT_PHASES) / steps
    total = sum(times.values()) / steps
    counts = {"rebuild": steps, "refit": 0, "lists_dropped": 0}
    maintainer = sim._tree_cache.get("_maintainer")
    if maintainer is not None:
        counts = dict(maintainer.counts)

    # Force error at the final (drifted) state vs a fresh rebuild.
    acc = sim.evaluate_forces()
    fresh = Simulation(
        BodySystem(system.x.copy(), system.v.copy(), system.m.copy()),
        _config(tree, "rebuild"), ctx=ExecutionContext(get_device(DEVICE)),
    )
    err = relative_l2_error(acc, fresh.evaluate_forces())
    return {
        "tree": tree, "mode": mode, "host_seconds": host,
        "maint_s_per_step": maint, "model_s_per_step": total,
        "rel_err_vs_rebuild": err, **{f"n_{k}": v for k, v in counts.items()},
    }


def _zero_drift_bitexact(tree: str, n: int = 512) -> bool:
    """Refit at unchanged positions must equal a rebuild bitwise."""
    mk = lambda: Simulation(
        galaxy_collision(n, seed=3), _config(tree, "refit"),
        ctx=ExecutionContext(get_device(DEVICE)),
    )
    refitted = mk()
    rebuilt = mk()
    rebuilt._tree_cache.clear()  # forget the epoch -> forced rebuild
    return bool(np.array_equal(refitted.evaluate_forces(),
                               rebuilt.evaluate_forces()))


def sweep(n: int, steps: int) -> list[dict]:
    rows = []
    for tree in TREES:
        base = None
        for mode in MODES:
            r = _run_mode(tree, mode, n, steps)
            if mode == "rebuild":
                base = r["maint_s_per_step"]
            r["maint_speedup"] = base / max(r["maint_s_per_step"], 1e-30)
            rows.append(r)
    return rows


def _records(rows: list[dict], n: int, steps: int) -> list[BenchRecord]:
    return [
        BenchRecord(
            workload="galaxy", n=n,
            config={"tree": r["tree"], "mode": r["mode"], "theta": THETA,
                    "group_size": GROUP_SIZE, "dt": DT, "steps": steps,
                    "device": DEVICE},
            host_seconds=r["host_seconds"],
            model_seconds=r["model_s_per_step"],
            extra={k: r[k] for k in
                   ("maint_s_per_step", "maint_speedup", "rel_err_vs_rebuild",
                    "n_rebuild", "n_refit", "n_lists_dropped")},
        )
        for r in rows
    ]


def _report(rows: list[dict], n: int, steps: int) -> str:
    cols = [{k: r[k] for k in ("tree", "mode", "maint_s_per_step",
                               "maint_speedup", "model_s_per_step",
                               "rel_err_vs_rebuild", "n_rebuild", "n_refit")}
            for r in rows]
    return format_table(
        cols, title=f"Tree maintenance, galaxy N={n}, {steps} steps, "
                    f"theta={THETA}, modeled on {DEVICE}")


def run(n: int, steps: int, *, min_speedup: float | None) -> int:
    rows = sweep(n, steps)
    print(_report(rows, n, steps))
    path = write_bench_json(
        "tree_maintenance", _records(rows, n, steps), out_dir=RESULTS_DIR,
        meta={"theta": THETA, "dt": DT, "steps": steps, "device": DEVICE},
    )
    print(f"[saved to {path}]")
    status = 0
    for tree in TREES:
        if not _zero_drift_bitexact(tree):
            print(f"FAIL: {tree} zero-drift refit not bit-exact")
            status = 1
    by = {(r["tree"], r["mode"]): r for r in rows}
    for tree in TREES:
        auto = by[(tree, "auto")]
        for mode in ("refit", "auto"):
            err = by[(tree, mode)]["rel_err_vs_rebuild"]
            if not err < 0.12 * THETA:
                print(f"FAIL: {tree}/{mode} error {err:.3g} exceeds theta bound")
                status = 1
        if min_speedup is not None and auto["maint_speedup"] < min_speedup:
            print(f"FAIL: {tree} auto maintenance speedup "
                  f"{auto['maint_speedup']:.2f}x < required {min_speedup}x")
            status = 1
    if status == 0:
        print("OK: zero-drift bit-exact, theta bound held"
              + (f", auto >= {min_speedup}x over rebuild"
                 if min_speedup is not None else ""))
    return status


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="small, fast run (low speedup floor; CI sanity check)")
    ap.add_argument("--n", type=int, default=None)
    ap.add_argument("--steps", type=int, default=None)
    args = ap.parse_args(argv)
    if args.smoke:
        return run(args.n or 2000, args.steps or 6, min_speedup=1.1)
    return run(args.n or 10_000, args.steps or 32, min_speedup=2.0)


try:
    import pytest
except ImportError:  # pragma: no cover - pytest always present in CI
    pytest = None

if pytest is not None:

    @pytest.mark.benchmark(group="maintenance")
    def test_tree_maintenance_smoke(benchmark, emit, results_dir):
        rows = benchmark.pedantic(lambda: sweep(2000, 6),
                                  rounds=1, iterations=1)
        emit("tree_maintenance_smoke", _report(rows, 2000, 6))
        write_bench_json("tree_maintenance", _records(rows, 2000, 6),
                         out_dir=results_dir,
                         meta={"theta": THETA, "dt": DT, "steps": 6,
                               "device": DEVICE, "smoke": True})
        by = {(r["tree"], r["mode"]): r for r in rows}
        for tree in TREES:
            assert by[(tree, "auto")]["maint_speedup"] > 1.1
            assert by[(tree, "refit")]["rel_err_vs_rebuild"] < 0.12 * THETA
            assert _zero_drift_bitexact(tree, n=256)


if __name__ == "__main__":
    sys.exit(main())
