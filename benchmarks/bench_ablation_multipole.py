"""Ablation: monopole vs quadrupole expansion order.

The paper uses monopoles "for exposition" and notes the algorithms
extend to multipoles.  This ablation quantifies the extension: at a
fixed theta, order 2 buys a large accuracy improvement for a modest
work increase — equivalently, it allows a much larger theta (fewer
node visits) at equal accuracy.
"""

import numpy as np
import pytest

from repro.bench import format_table
from repro.bvh.build import build_bvh
from repro.bvh.force import bvh_accelerations
from repro.octree.build_vectorized import build_octree_vectorized
from repro.octree.force import octree_accelerations
from repro.octree.multipoles import compute_multipoles_vectorized
from repro.physics.gravity import GravityParams, pairwise_accelerations
from repro.stdpar.context import ExecutionContext
from repro.workloads import galaxy_collision

N = 3000
PARAMS = GravityParams(softening=0.05)


def sweep():
    system = galaxy_collision(N, seed=0)
    ref = pairwise_accelerations(system.x, system.m, PARAMS)
    scale = np.abs(ref).max()
    pool = build_octree_vectorized(system.x)

    rows = []
    for theta in (0.4, 0.7, 1.0):
        for order in (1, 2):
            compute_multipoles_vectorized(pool, system.x, system.m, order=order)
            ctx = ExecutionContext()
            acc = octree_accelerations(pool, system.x, system.m, PARAMS,
                                       theta=theta, ctx=ctx)
            rows.append({
                "strategy": "octree", "theta": theta, "order": order,
                "max_rel_error": float(np.abs(acc - ref).max() / scale),
                "rms_rel_error": float(np.sqrt(((acc - ref) ** 2).mean()) / scale),
                "flops": ctx.counters.flops,
            })
            bvh = build_bvh(system.x, system.m, order=order)
            ctx = ExecutionContext()
            acc = bvh_accelerations(bvh, PARAMS, theta=theta, ctx=ctx)
            rows.append({
                "strategy": "bvh", "theta": theta, "order": order,
                "max_rel_error": float(np.abs(acc - ref).max() / scale),
                "rms_rel_error": float(np.sqrt(((acc - ref) ** 2).mean()) / scale),
                "flops": ctx.counters.flops,
            })
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_multipole_order(benchmark, emit):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("ablation_multipole", format_table(
        rows, title=f"Ablation: multipole order, galaxy N={N}"
    ))

    for strategy in ("octree", "bvh"):
        for theta in (0.4, 0.7, 1.0):
            pair = {r["order"]: r for r in rows
                    if r["strategy"] == strategy and r["theta"] == theta}
            # big accuracy win (RMS; the max error is dominated by a
            # single worst-case near-threshold node at large theta) ...
            assert pair[2]["rms_rel_error"] < 0.55 * pair[1]["rms_rel_error"]
            assert pair[2]["max_rel_error"] < pair[1]["max_rel_error"]
            # ... for bounded extra arithmetic
            assert pair[2]["flops"] < 2.5 * pair[1]["flops"]
