"""Shared infrastructure for the figure/table benchmarks.

Every bench both *times* its computation via pytest-benchmark and
*emits* the rows behind the corresponding paper figure: tables are
printed to stdout and saved under ``benchmarks/results/`` so that
EXPERIMENTS.md can reference them.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Size cap for direct host execution inside benches.  Figures at the
#: paper's sizes use ladder extrapolation beyond it (see
#: repro.bench.extrapolate).  Override with REPRO_BENCH_MAX_DIRECT.
MAX_DIRECT = int(os.environ.get("REPRO_BENCH_MAX_DIRECT", "8000"))


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(results_dir, capsys):
    """Print a table and persist it to results/<name>.txt."""

    def _emit(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{text}\n[saved to benchmarks/results/{name}.txt]")

    return _emit
