"""Figure 9: two heterogeneous ISO C++ toolchains (NVC++ vs AdaptiveCpp)
on GH200 over a body-count sweep.

Expected shape: comparable performance across the sweep, largest
difference ~1.25x, differences mostly attributable to CALCULATEFORCE
(compute efficiency) and sort.
"""

import pytest

from conftest import MAX_DIRECT
from repro.bench import format_table
from repro.experiments.figures import fig9_rows

SIZES = (10_000, 30_000, 100_000, 300_000, 1_000_000)


@pytest.mark.benchmark(group="fig9")
def test_fig9_toolchains(benchmark, emit):
    rows = benchmark.pedantic(
        fig9_rows, kwargs={"sizes": SIZES, "max_direct": MAX_DIRECT},
        rounds=1, iterations=1,
    )
    emit("fig9_toolchains", format_table(
        rows,
        columns=["device", "algorithm", "n", "nvcpp_bodies_per_s",
                 "acpp_bodies_per_s", "ratio"],
        title="Figure 9: NVC++ vs AdaptiveCpp on GH200",
    ))

    ratios = [r["ratio"] for r in rows]
    assert all(r is not None for r in ratios)
    # Comparable performance; spread bounded like the paper's 1.25x.
    assert max(max(ratios), 1 / min(ratios)) < 1.4
    # NVC++ never loses by much and usually wins slightly.
    assert sum(r >= 1.0 for r in ratios) >= len(ratios) // 2
