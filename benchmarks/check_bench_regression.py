"""Compare fresh BENCH_*.json results against committed baselines.

For every baseline file under ``benchmarks/baselines/`` the same-named
fresh file must exist in the results directory, every baseline record
must be matchable by its identity key ``(workload, n, config)``, and
the matched record's deterministic metrics — ``model_seconds`` plus
every numeric ``extra`` — must agree within a relative tolerance band.
``host_seconds`` is wall clock of whatever machine ran the bench and is
never compared.

Usage::

    python benchmarks/check_bench_regression.py \
        [--results benchmarks/results] [--baselines benchmarks/baselines] \
        [--rtol 0.25]

Exit status 1 on any missing file, unmatched record, or out-of-band
metric; 0 otherwise.  Regenerate a baseline by copying the fresh file
over it (and eyeballing the diff) when an intentional change shifts
the modeled numbers.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

DEFAULT_RTOL = 0.25
#: Absolute floor below which two metrics are considered equal (guards
#: ratios of near-zero error/drop counters).
ATOL = 1e-12
#: Bench payload schemas this checker understands (v2 adds an optional
#: per-record ``metrics`` block, which is not part of the comparison).
ACCEPTED_SCHEMAS = ("repro-bench-v1", "repro-bench-v2")


def _key(rec: dict) -> tuple:
    return (rec["workload"], int(rec["n"]),
            json.dumps(rec.get("config", {}), sort_keys=True))


def _metrics(rec: dict) -> dict[str, float]:
    out = {}
    if rec.get("model_seconds") is not None:
        out["model_seconds"] = float(rec["model_seconds"])
    for k, v in (rec.get("extra") or {}).items():
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            continue
        out[f"extra.{k}"] = float(v)
    return out


def _within(fresh: float, base: float, rtol: float) -> bool:
    return abs(fresh - base) <= max(rtol * abs(base), ATOL)


def check_file(fresh_path: pathlib.Path, base_path: pathlib.Path,
               rtol: float) -> list[str]:
    problems: list[str] = []
    base = json.loads(base_path.read_text())
    fresh = json.loads(fresh_path.read_text())
    for label, payload in (("baseline", base), ("fresh", fresh)):
        schema = payload.get("schema")
        if schema not in ACCEPTED_SCHEMAS:
            problems.append(f"{base_path.name}: unsupported {label} schema "
                            f"{schema!r} (accepted: {ACCEPTED_SCHEMAS})")
    if problems:
        return problems
    fresh_by_key: dict[tuple, dict] = {}
    for rec in fresh.get("records", []):
        fresh_by_key[_key(rec)] = rec
    for rec in base.get("records", []):
        got = fresh_by_key.get(_key(rec))
        if got is None:
            problems.append(f"{base_path.name}: no fresh record for "
                            f"{rec['workload']} n={rec['n']} "
                            f"{rec.get('config')}")
            continue
        want = _metrics(rec)
        have = _metrics(got)
        for name, b in want.items():
            f = have.get(name)
            if f is None:
                problems.append(f"{base_path.name}: {_key(rec)[2]}: "
                                f"metric {name} missing from fresh record")
            elif not _within(f, b, rtol):
                problems.append(
                    f"{base_path.name}: {_key(rec)[2]}: {name} = {f:.6g} "
                    f"vs baseline {b:.6g} (> {rtol:.0%} band)")
    return problems


def main(argv: list[str] | None = None) -> int:
    here = pathlib.Path(__file__).parent
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--results", type=pathlib.Path, default=here / "results")
    ap.add_argument("--baselines", type=pathlib.Path,
                    default=here / "baselines")
    ap.add_argument("--rtol", type=float, default=DEFAULT_RTOL)
    args = ap.parse_args(argv)

    baselines = sorted(args.baselines.glob("BENCH_*.json"))
    if not baselines:
        print(f"no baselines under {args.baselines}; nothing to check")
        return 0
    problems: list[str] = []
    for base_path in baselines:
        fresh_path = args.results / base_path.name
        if not fresh_path.exists():
            problems.append(f"{base_path.name}: fresh result missing "
                            f"(expected {fresh_path})")
            continue
        problems += check_file(fresh_path, base_path, args.rtol)
    if problems:
        print(f"REGRESSION CHECK FAILED ({len(problems)} problem(s)):")
        for p in problems:
            print(f"  - {p}")
        return 1
    print(f"regression check OK: {len(baselines)} baseline file(s) within "
          f"{args.rtol:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
