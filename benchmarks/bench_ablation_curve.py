"""Ablation: Hilbert vs Morton ordering for the BVH.

Related work (Lauterbach et al. [35], PLOC [36-38]) sorts by Morton
codes; the paper argues for Hilbert ordering with pairwise aggregation.
The Hilbert curve has no long jumps, so curve-adjacent leaves are
spatially adjacent and the pairwise-aggregated boxes are tighter —
fewer traversal visits and less SIMT divergence for the same theta.
"""

import numpy as np
import pytest

from repro.bench import format_table
from repro.bvh.build import build_bvh
from repro.bvh.force import bvh_accelerations
from repro.physics.gravity import GravityParams
from repro.stdpar.context import ExecutionContext
from repro.workloads import galaxy_collision, uniform_cube

N = 4000
PARAMS = GravityParams(softening=0.05)


def sweep():
    rows = []
    for wl_name, system in (
        ("galaxy", galaxy_collision(N, seed=0)),
        ("uniform", uniform_cube(N, seed=0)),
    ):
        for curve in ("hilbert", "morton"):
            bvh = build_bvh(system.x, system.m, curve=curve)
            ctx = ExecutionContext()
            bvh_accelerations(bvh, PARAMS, theta=0.5, ctx=ctx, simt_width=32)
            c = ctx.counters
            # box quality: total surface-ish extent of internal nodes
            ext = np.maximum(bvh.bb_hi - bvh.bb_lo, 0.0)
            internal = slice(0, bvh.layout.first_leaf)
            rows.append({
                "workload": wl_name, "curve": curve,
                "visits_per_body": c.traversal_steps / N,
                "divergence": c.warp_traversal_steps / c.traversal_steps,
                "mean_box_extent": float(ext[internal].max(axis=1).mean()),
            })
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_curve(benchmark, emit):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("ablation_curve", format_table(
        rows, title=f"Ablation: Hilbert vs Morton BVH ordering, N={N}"
    ))

    for wl in ("galaxy", "uniform"):
        h = next(r for r in rows if r["workload"] == wl and r["curve"] == "hilbert")
        m = next(r for r in rows if r["workload"] == wl and r["curve"] == "morton")
        # Hilbert gives tighter boxes and no more traversal work.
        assert h["mean_box_extent"] <= m["mean_box_extent"] * 1.02
        assert h["visits_per_body"] <= m["visits_per_body"] * 1.05
