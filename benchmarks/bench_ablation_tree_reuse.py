"""Ablation: amortizing tree construction across timesteps.

Iwasawa et al. [30] (paper Section VI) amortize tree construction by
reusing the tree over multiple timesteps as an additional
approximation, and the paper notes the idea applies to any Barnes-Hut
implementation.  This ablation measures the trade on our pipeline:
per-step build cost drops with the reuse window while the trajectory
error against the rebuild-every-step reference grows slowly.
"""

import numpy as np
import pytest

from repro.bench import format_table
from repro.core.config import SimulationConfig
from repro.core.simulation import Simulation
from repro.machine import get_device
from repro.machine.costmodel import CostModel
from repro.physics.accuracy import relative_l2_error
from repro.physics.gravity import GravityParams
from repro.workloads import galaxy_collision

N = 2000
STEPS = 12
PARAMS = GravityParams(softening=0.05)


def sweep():
    device = get_device("gh200")
    reference = None
    rows = []
    for reuse in (1, 2, 4, 8):
        system = galaxy_collision(N, seed=0)
        cfg = SimulationConfig(algorithm="octree", theta=0.5, dt=5e-3,
                               gravity=PARAMS, tree_reuse_steps=reuse)
        sim = Simulation(system, cfg)
        rep = sim.run(STEPS)
        if reference is None:
            reference = system.x.copy()
        model = CostModel(device)
        times = model.step_times(rep.per_step())
        rows.append({
            "reuse_window": reuse,
            "build_s_per_step(gh200)": times.get("build_tree", 0.0),
            "total_s_per_step(gh200)": sum(times.values()),
            "traj_error_vs_rebuild": relative_l2_error(system.x, reference),
        })
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_tree_reuse(benchmark, emit):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("ablation_tree_reuse", format_table(
        rows, title=f"Ablation: tree reuse window, octree, galaxy N={N}, "
                    f"{STEPS} steps",
    ))

    builds = [r["build_s_per_step(gh200)"] for r in rows]
    errors = [r["traj_error_vs_rebuild"] for r in rows]
    # amortization: per-step build cost strictly decreases with reuse
    assert all(a > b for a, b in zip(builds, builds[1:]))
    # reference row has zero error; approximation stays mild
    assert errors[0] == 0.0
    assert all(e < 1e-2 for e in errors)
