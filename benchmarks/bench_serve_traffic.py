"""Serve traffic benchmark: shared-structure speedup + latency study.

Drives the :mod:`repro.serve` session server with deterministic seeded
traffic and reports, in the shared ``repro-bench-v2`` schema:

* **sharing** — 8 concurrent tenants running the *identical*
  octree-grouped query, once with the cross-session structure cache on
  and once isolated.  The full run asserts the tentpole target:
  >= 1.5x aggregate session throughput (steps per modeled second)
  shared vs isolated, with bit-identical per-session results either
  way, and reports p50/p99 session latency for both modes.
* **mixed** — a Poisson interactive/batch/sweep mix across tenants
  under DRR fair scheduling; one record per tenant with its p50/p99
  latency, throttle events, and the per-tenant metrics block.
* **determinism** — the mixed scenario runs twice (tracer attached):
  the serialized bench records and the Perfetto trace export must be
  byte-identical between the runs.

Usage::

    python benchmarks/bench_serve_traffic.py            # full run
    python benchmarks/bench_serve_traffic.py --smoke    # quick CI check
    pytest benchmarks/bench_serve_traffic.py            # smoke via pytest

All reported quantities are modeled (deterministic); ``host_seconds``
is fixed at 0.0 so record payloads are byte-comparable run to run.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.bench import BenchRecord, format_table, write_bench_json
from repro.core.config import SimulationConfig
from repro.obs import Tracer, chrome_trace
from repro.serve import RequestClass, SessionServer, generate_traffic
from repro.serve.telemetry import percentile

SEED = 7
DEVICE = "gh200"
QUANTUM_STEPS = 2
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _octree_cfg() -> SimulationConfig:
    return SimulationConfig(algorithm="octree", traversal="grouped",
                            group_size=16)


def _mixed_classes(scale: float) -> list[RequestClass]:
    """The interactive/batch/sweep mix, size-scaled for smoke runs."""
    def s(n: int) -> int:
        return max(32, int(n * scale))

    return [
        RequestClass("interactive", "plummer", n=s(192), steps=4, weight=3.0,
                     config=_octree_cfg()),
        RequestClass("batch", "galaxy", n=s(384), steps=8, weight=1.0,
                     config=_octree_cfg()),
        RequestClass("sweep", "cube", n=s(256), steps=6, weight=1.0,
                     config=_octree_cfg()),
    ]


# ---------------------------------------------------------------------------
# Scenario: identical tenants, shared vs isolated structure cache
# ---------------------------------------------------------------------------
def sharing_scenario(*, n: int, steps: int, tenants: int = 8) -> list[dict]:
    specs = generate_traffic(
        seed=SEED, tenants=tenants, sessions_per_tenant=1, identical=True,
        classes=[RequestClass("twin", "plummer", n=n, steps=steps,
                              config=_octree_cfg())],
    )
    rows = []
    results = {}
    for mode, cached in (("isolated", False), ("shared", True)):
        server = SessionServer(quantum_steps=QUANTUM_STEPS,
                               shared_cache=cached, device=DEVICE)
        res = server.run(specs)
        results[mode] = res
        lats = res.latencies()
        cache = res.cache or {}
        rows.append({
            "mode": mode, "n": n, "tenants": tenants,
            "model_seconds": res.clock,
            "steps_per_second": res.steps_per_second,
            "latency_p50": percentile(lats, 50),
            "latency_p99": percentile(lats, 99),
            "cache_hit_rate": cache.get("hit_rate", 0.0),
        })
    # Sharing must never change the physics: per-session final-state
    # digests are equal across modes.
    digest = {
        mode: {r["name"]: r["result"] for r in res.sessions}
        for mode, res in results.items()
    }
    assert digest["shared"] == digest["isolated"], \
        "shared cache changed session results"
    speedup = (results["shared"].steps_per_second
               / results["isolated"].steps_per_second)
    for r in rows:
        r["speedup"] = speedup
    return rows


# ---------------------------------------------------------------------------
# Scenario: mixed-class Poisson traffic under fair scheduling
# ---------------------------------------------------------------------------
def mixed_scenario(
    *, scale: float, tenants: int, sessions: int,
    mean_interarrival: float, tracer: Tracer | None = None,
) -> tuple[list[dict], "SessionServer", object]:
    specs = generate_traffic(
        seed=SEED, tenants=tenants, sessions_per_tenant=sessions,
        classes=_mixed_classes(scale), mean_interarrival=mean_interarrival,
    )
    server = SessionServer(quantum_steps=QUANTUM_STEPS, device=DEVICE,
                           tracer=tracer)
    res = server.run(specs)
    rows = []
    for tenant in sorted(res.tenants):
        t = res.tenants[tenant]
        bodies = sum(r["n"] for r in res.sessions
                     if r["tenant"] == tenant)
        rows.append({
            "tenant": tenant, "bodies": bodies,
            "completed": t["completed"], "rejected": t["rejected"],
            "steps": t["steps"],
            "model_seconds": t["device_seconds"],
            "share": t["share"],
            "throttle_events": t["throttle_events"],
            "latency_p50": t["latency_p50"],
            "latency_p99": t["latency_p99"],
        })
    return rows, server, res


# ---------------------------------------------------------------------------
# Records + report
# ---------------------------------------------------------------------------
def _sharing_records(rows: list[dict], steps: int) -> list[BenchRecord]:
    return [
        BenchRecord(
            workload="plummer", n=r["n"],
            config={"scenario": "sharing", "mode": r["mode"],
                    "algorithm": "octree", "traversal": "grouped",
                    "tenants": r["tenants"], "steps": steps,
                    "quantum_steps": QUANTUM_STEPS, "device": DEVICE},
            host_seconds=0.0, model_seconds=r["model_seconds"],
            extra={"steps_per_second": r["steps_per_second"],
                   "speedup": r["speedup"],
                   "latency_p50": r["latency_p50"],
                   "latency_p99": r["latency_p99"],
                   "cache_hit_rate": r["cache_hit_rate"]},
        )
        for r in rows
    ]


def _mixed_records(rows: list[dict], server) -> list[BenchRecord]:
    return [
        BenchRecord(
            workload="mixed", n=r["bodies"],
            config={"scenario": "mixed", "tenant": r["tenant"],
                    "quantum_steps": QUANTUM_STEPS, "device": DEVICE},
            host_seconds=0.0, model_seconds=r["model_seconds"],
            extra={"completed": r["completed"], "rejected": r["rejected"],
                   "steps": r["steps"], "share": r["share"],
                   "throttle_events": r["throttle_events"],
                   "latency_p50": r["latency_p50"],
                   "latency_p99": r["latency_p99"]},
            metrics=server.tenant_metrics(r["tenant"]).metrics_block(),
        )
        for r in rows
    ]


def _records_bytes(records: list[BenchRecord]) -> str:
    """The deterministic serialization the determinism check compares."""
    return json.dumps([r.to_dict() for r in records], sort_keys=True,
                      separators=(",", ":"))


def _report(sharing_rows: list[dict], mixed_rows: list[dict]) -> str:
    parts = [
        format_table(sharing_rows,
                     title=f"Shared vs isolated structure cache, "
                           f"identical octree tenants (modeled on {DEVICE})"),
        format_table(mixed_rows,
                     title=f"Mixed-class traffic per tenant, DRR "
                           f"quantum={QUANTUM_STEPS} steps "
                           f"(modeled on {DEVICE})"),
    ]
    return "\n".join(parts)


# ---------------------------------------------------------------------------
# Checks
# ---------------------------------------------------------------------------
def _check(sharing_rows: list[dict], *, min_speedup: float | None) -> int:
    status = 0
    speedup = sharing_rows[0]["speedup"]
    if min_speedup is not None and speedup < min_speedup:
        print(f"FAIL: sharing speedup {speedup:.2f}x < required "
              f"{min_speedup}x")
        status = 1
    shared = next(r for r in sharing_rows if r["mode"] == "shared")
    if not shared["cache_hit_rate"] > 0.5:
        print(f"FAIL: shared-cache hit rate "
              f"{shared['cache_hit_rate']:.2f} <= 0.5")
        status = 1
    return status


def _check_determinism(*, scale: float, tenants: int, sessions: int,
                       mean_interarrival: float) -> int:
    payloads = []
    traces = []
    for _ in range(2):
        tracer = Tracer()
        rows, server, _res = mixed_scenario(
            scale=scale, tenants=tenants, sessions=sessions,
            mean_interarrival=mean_interarrival, tracer=tracer)
        payloads.append(_records_bytes(_mixed_records(rows, server)))
        traces.append(json.dumps(chrome_trace(tracer), sort_keys=True,
                                 separators=(",", ":")))
    if payloads[0] != payloads[1]:
        print("FAIL: bench records differ between identical seeded runs")
        return 1
    if traces[0] != traces[1]:
        print("FAIL: trace exports differ between identical seeded runs")
        return 1
    print("OK: records and traces byte-identical across seeded reruns")
    return 0


# ---------------------------------------------------------------------------
def run(*, n: int, steps: int, scale: float, tenants: int, sessions: int,
        mean_interarrival: float, min_speedup: float | None,
        smoke: bool) -> int:
    sharing_rows = sharing_scenario(n=n, steps=steps)
    mixed_rows, server, _res = mixed_scenario(
        scale=scale, tenants=tenants, sessions=sessions,
        mean_interarrival=mean_interarrival)
    print(_report(sharing_rows, mixed_rows))
    status = _check(sharing_rows, min_speedup=min_speedup)
    status |= _check_determinism(
        scale=scale, tenants=tenants, sessions=sessions,
        mean_interarrival=mean_interarrival)
    records = (_sharing_records(sharing_rows, steps)
               + _mixed_records(mixed_rows, server))
    path = write_bench_json(
        "serve_traffic", records, out_dir=RESULTS_DIR,
        meta={"seed": SEED, "device": DEVICE,
              "quantum_steps": QUANTUM_STEPS, "smoke": smoke})
    print(f"[saved to {path}]")
    if status == 0 and min_speedup is not None:
        print(f"OK: sharing speedup {sharing_rows[0]['speedup']:.2f}x "
              f"at {len(sharing_rows)} modes, "
              f"p99 shared={sharing_rows[1]['latency_p99']:.3e}s")
    return status


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="small, fast run (relaxed speedup floor)")
    args = ap.parse_args(argv)
    if args.smoke:
        return run(n=128, steps=4, scale=0.5, tenants=3, sessions=2,
                   mean_interarrival=1e-5, min_speedup=1.2, smoke=True)
    return run(n=256, steps=8, scale=1.0, tenants=4, sessions=4,
               mean_interarrival=2e-5, min_speedup=1.5, smoke=False)


try:
    import pytest
except ImportError:  # pragma: no cover - pytest always present in CI
    pytest = None

if pytest is not None:

    @pytest.mark.benchmark(group="serve")
    def test_serve_traffic_smoke(benchmark, emit, results_dir):
        rows = benchmark.pedantic(
            lambda: sharing_scenario(n=128, steps=4),
            rounds=1, iterations=1)
        mixed_rows, server, _res = mixed_scenario(
            scale=0.5, tenants=3, sessions=2, mean_interarrival=1e-5)
        emit("serve_traffic_smoke", _report(rows, mixed_rows))
        write_bench_json(
            "serve_traffic",
            _sharing_records(rows, 4) + _mixed_records(mixed_rows, server),
            out_dir=results_dir,
            meta={"seed": SEED, "device": DEVICE,
                  "quantum_steps": QUANTUM_STEPS, "smoke": True})
        assert _check(rows, min_speedup=1.2) == 0


if __name__ == "__main__":
    sys.exit(main())
