"""Figure 8: relative execution time of the non-force pipeline steps on
a GH200 system (Grace CPU and Hopper GPU) across toolchains.

Expected shapes: inter-toolchain variation is small and concentrated in
the parallel sort ("which is not necessarily optimised in all
compilers"); the remaining steps are bandwidth/launch bound and nearly
toolchain-independent.
"""

import pytest

from conftest import MAX_DIRECT
from repro.bench import format_table
from repro.experiments.figures import fig8_rows

N_SMALL = 100_000


@pytest.mark.benchmark(group="fig8")
def test_fig8_components(benchmark, emit):
    rows = benchmark.pedantic(
        fig8_rows, kwargs={"n": N_SMALL, "max_direct": MAX_DIRECT},
        rounds=1, iterations=1,
    )
    emit("fig8_components", format_table(
        rows,
        columns=["device", "toolchain", "algorithm", "step",
                 "seconds", "fraction_of_total"],
        title=f"Figure 8: component breakdown (excl. force), N={N_SMALL}",
    ))

    # Variation across toolchains, per (device, algorithm, step).
    spread: dict = {}
    for r in rows:
        spread.setdefault((r["device"], r["algorithm"], r["step"]), []).append(
            r["seconds"]
        )
    sort_spreads, other_spreads = [], []
    for (dev, alg, step), secs in spread.items():
        if len(secs) < 2:
            continue
        ratio = max(secs) / min(secs)
        (sort_spreads if step == "sort" else other_spreads).append(ratio)

    # Sort is where toolchains differ; the rest is nearly identical.
    assert max(sort_spreads) > 1.05
    assert max(other_spreads) < max(sort_spreads) + 0.05
    # Overall variation stays small (paper: 'relatively small').
    assert max(sort_spreads) < 1.5

    # Force excluded per the figure's definition.
    assert all(r["step"] != "force" for r in rows)
