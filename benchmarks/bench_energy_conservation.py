"""Section V-A's physics claim: "The simulations produce consistent
final results across all systems, conserving mass and energy."

A longer integration of the galaxy workload with every algorithm,
asserting bounded relative energy drift, exact mass conservation, and
cross-algorithm consistency of the final state at a tight opening
angle.  Run per multipole order to show the order-2 expansion tracks
the exact trajectory strictly better.
"""

import numpy as np
import pytest

from repro.bench import format_table
from repro.core.config import SimulationConfig
from repro.core.simulation import Simulation
from repro.physics.accuracy import relative_l2_error
from repro.physics.diagnostics import energy_report
from repro.physics.gravity import GravityParams
from repro.workloads import galaxy_collision

N = 1500
STEPS = 60
PARAMS = GravityParams(softening=0.05)
ALGS = ("all-pairs", "octree", "bvh", "octree-2stage")


def sweep():
    base = galaxy_collision(N, seed=4)
    e0 = energy_report(base, PARAMS)
    m0 = base.total_mass
    finals = {}
    rows = []
    for alg in ALGS:
        s = base.copy()
        cfg = SimulationConfig(algorithm=alg, theta=0.3, dt=5e-3, gravity=PARAMS)
        rep = Simulation(s, cfg).run(STEPS)
        e1 = energy_report(s, PARAMS)
        finals[alg] = s.x.copy()
        rows.append({
            "algorithm": alg,
            "energy_drift": e1.drift_from(e0),
            "mass_drift": abs(s.total_mass - m0),
            "wall_s": rep.wall_seconds,
        })
    ref = finals["all-pairs"]
    for row in rows:
        row["final_pos_gap_vs_exact"] = relative_l2_error(finals[row["algorithm"]], ref)

    # order-2 improvement on the octree
    s1 = base.copy()
    Simulation(s1, SimulationConfig(algorithm="octree", theta=0.6, dt=5e-3,
                                    gravity=PARAMS, multipole_order=1)).run(STEPS)
    s2 = base.copy()
    Simulation(s2, SimulationConfig(algorithm="octree", theta=0.6, dt=5e-3,
                                    gravity=PARAMS, multipole_order=2)).run(STEPS)
    rows.append({
        "algorithm": "octree theta=0.6 order1->2",
        "final_pos_gap_vs_exact": None,
        "order1_gap": relative_l2_error(s1.x, ref := finals["all-pairs"]),
        "order2_gap": relative_l2_error(s2.x, ref),
    })
    return rows


@pytest.mark.benchmark(group="conservation")
def test_energy_conservation(benchmark, emit):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("energy_conservation", format_table(
        rows, title=f"Conservation over {STEPS} steps, galaxy N={N}, theta=0.3"
    ))
    for r in rows[:4]:
        assert r["mass_drift"] == 0.0
        assert r["energy_drift"] < 2e-3
        assert r["final_pos_gap_vs_exact"] < 5e-3
    extra = rows[-1]
    assert extra["order2_gap"] < extra["order1_gap"]
