"""Table I: BabelStream TRIAD bandwidth validation.

Paper column "Exp. [GB/s]" = measured TRIAD bandwidth per system.  Here
the TRIAD kernel runs through the stdpar layer; the cost model's
predicted bandwidth per catalog device stands in for the measurement
(and recovers the Table I numbers), while the host row is a real numpy
measurement of this reproduction.
"""

import pytest

from repro.machine.babelstream import format_triad_table, triad_table


@pytest.mark.benchmark(group="table1")
def test_table1_triad(benchmark, emit):
    results = benchmark.pedantic(triad_table, kwargs={"n": 2**24},
                                 rounds=1, iterations=1)
    emit("table1_babelstream", format_triad_table(results))

    # Shape assertions mirroring the Table I column relationship.
    for r in results:
        if r.device.key == "host":
            continue
        assert 0 < r.predicted_gbs <= r.theoretical_gbs
        assert r.efficiency > 0.55
