"""Figure 6: algorithm throughput for the small-size galaxy workload
(1e5 bodies) across the full device catalog.

Expected shapes (paper Section V-B):
* All-Pairs > All-Pairs-Col everywhere except NVIDIA GPUs;
* MI300X has the highest all-pairs-family throughput;
* BVH runs on every system; Octree only on CPUs and NVIDIA GPUs;
* GH200: Octree is the overall best, ~1.5x over BVH;
* A100 (Ampere partitioned L2): BVH beats Octree at this size.
"""

import pytest

from conftest import MAX_DIRECT
from repro.bench import format_table
from repro.experiments.figures import fig6_rows

N_SMALL = 100_000


@pytest.mark.benchmark(group="fig6")
def test_fig6_small(benchmark, emit):
    rows = benchmark.pedantic(
        fig6_rows, kwargs={"n": N_SMALL, "max_direct": MAX_DIRECT},
        rounds=1, iterations=1,
    )
    emit("fig6_small", format_table(
        rows,
        columns=["device", "kind", "algorithm", "n", "bodies_per_s"],
        title=f"Figure 6: algorithm throughput, galaxy N={N_SMALL}",
    ))

    thr = {(r["device"], r["algorithm"]): r["bodies_per_s"] for r in rows}

    # Octree / All-Pairs-Col unavailable on AMD & Intel GPUs.
    for dev in ("AMD MI100", "AMD MI250 GCD", "AMD MI300X",
                "Intel PVC1550 2 Tiles"):
        assert thr[(dev, "octree")] is None
        assert thr[(dev, "bvh")] is not None

    # All-Pairs vs All-Pairs-Col ordering.
    for dev in ("NV V100-16", "NV A100-80", "NV H100-80", "NV GH200-480"):
        assert thr[(dev, "all-pairs-col")] > thr[(dev, "all-pairs")]
    for dev in ("AMD 9654 (Genoa)", "AWS Graviton4", "Intel 8480C (SPR)",
                "NV Grace-120"):
        assert thr[(dev, "all-pairs")] > thr[(dev, "all-pairs-col")]

    # MI300X tops the all-pairs family.
    best_ap = max((v, d) for (d, a), v in thr.items()
                  if a == "all-pairs" and v)
    assert best_ap[1] == "AMD MI300X"

    # GH200: octree best overall, ~1.5x BVH.
    gh = {a: thr[("NV GH200-480", a)] for a in
          ("all-pairs", "all-pairs-col", "octree", "bvh")}
    assert gh["octree"] == max(v for v in gh.values() if v)
    assert 1.2 < gh["octree"] / gh["bvh"] < 2.2

    # Ampere inversion at small size.
    assert thr[("NV A100-80", "bvh")] > thr[("NV A100-80", "octree")]
    assert thr[("NV H100-80", "octree")] > thr[("NV H100-80", "bvh")]
