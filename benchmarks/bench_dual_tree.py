"""Microbenchmark: dual-tree cell-cell traversal vs grouped traversal.

Times CALCULATEFORCE only (tree prebuilt) on the Plummer workload for
the BVH strategy in two traversal modes:

* ``grouped`` — group-coherent interaction lists, every accepted node
  evaluated against every body of the group;
* ``dual``    — cell-cell MAC promotes well-separated (target box,
  source node) pairs to one M2L into a local expansion, evaluated once
  per target *cell* and pushed to bodies by the L2L/L2P downsweep.

Both modes are measured in steady state (lists cached, eval only) and
costed on the pinned Table I device, so the reported ratios are
deterministic and regression-checked:

* ``interaction_ratio`` — evaluated interactions, grouped / dual
  (near pairs + one per cc pair + one L2P per body);
* ``model_force_ratio`` — modeled steady-state force seconds,
  grouped / dual.

Usage::

    python benchmarks/bench_dual_tree.py            # full, N=1e4 and 1e5
    python benchmarks/bench_dual_tree.py --smoke    # quick CI check
    pytest benchmarks/bench_dual_tree.py            # smoke via pytest

The full run asserts the tentpole targets at N=1e5: >= 3x fewer
evaluated interactions and >= 1.5x modeled force-phase time vs grouped,
with the dual error vs (sampled) all-pairs inside the theta bound and
within a small constant of grouped's.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

import numpy as np

from repro.bench import BenchRecord, format_table, write_bench_json
from repro.bvh.build import build_bvh
from repro.bvh.force import bvh_accelerations_dual, bvh_accelerations_grouped
from repro.machine.catalog import get_device
from repro.machine.costmodel import CostModel
from repro.physics.accuracy import relative_l2_error
from repro.physics.gravity import GravityParams, pairwise_accelerations
from repro.stdpar.context import ExecutionContext
from repro.workloads import plummer_sphere

PARAMS = GravityParams(softening=0.05)
THETA = 0.5
GROUP_SIZE = 32
CC_MAC = 1.5
ORDER = 2
DEVICE = "gh200"
ERR_SAMPLE = 512
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _records(rows: list[dict]) -> list[BenchRecord]:
    """Rows in the shared BENCH_*.json schema (repro.bench.record)."""
    return [
        BenchRecord(
            workload="plummer", n=r["n"],
            config={"tree": "bvh", "mode": r["mode"], "theta": THETA,
                    "group_size": GROUP_SIZE, "cc_mac": CC_MAC,
                    "expansion_order": ORDER, "device": DEVICE,
                    "softening": PARAMS.softening},
            host_seconds=r["host_seconds"], model_seconds=r["model_seconds"],
            extra={"interactions": r["interactions"],
                   "interaction_ratio": r["interaction_ratio"],
                   "model_force_ratio": r["model_force_ratio"],
                   "rel_l2_vs_pairwise": r["rel_l2_vs_pairwise"]},
        )
        for r in rows
    ]


def _best_of(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def sweep(n: int, *, reps: int = 3) -> list[dict]:
    """Measure both traversal modes at size *n* (steady state)."""
    system = plummer_sphere(n, seed=7)
    x, m = system.x, system.m
    bvh = build_bvh(x, m)
    model = CostModel(get_device(DEVICE))

    sample = np.linspace(0, n - 1, min(ERR_SAMPLE, n)).astype(np.int64)
    ref = pairwise_accelerations(x, m, PARAMS, targets=sample)

    def grouped(cache, ctx=None):
        return bvh_accelerations_grouped(
            bvh, PARAMS, theta=THETA, group_size=GROUP_SIZE,
            cache=cache, ctx=ctx)

    def dual(cache, ctx=None):
        return bvh_accelerations_dual(
            bvh, PARAMS, theta=THETA, group_size=GROUP_SIZE,
            cc_mac=CC_MAC, expansion_order=ORDER, cache=cache, ctx=ctx)

    rows = []
    for mode, fn in (("grouped", grouped), ("dual", dual)):
        cache: dict = {}
        acc = fn(cache, ExecutionContext())           # list build pass
        steady = ExecutionContext()
        fn(cache, steady)                              # cached-list pass
        c = steady.counters
        # evaluated interactions of one steady step: near tile pairs,
        # plus one M2L per accepted cell-cell pair and one L2P per body
        # in dual mode (cc counters are zero for grouped).
        inter = c.list_eval_interactions + c.pairs_accepted_cc
        if c.pairs_accepted_cc > 0:
            inter += n
        rows.append({
            "n": n, "mode": mode,
            "host_seconds": _best_of(lambda: fn(cache), reps),
            "model_seconds": model.step_time(c).total,
            "interactions": float(inter),
            "rel_l2_vs_pairwise": relative_l2_error(acc[sample], ref),
        })
    g, d = rows
    for r in rows:
        r["interaction_ratio"] = g["interactions"] / r["interactions"]
        r["model_force_ratio"] = g["model_seconds"] / r["model_seconds"]
    return rows


def _report(rows: list[dict]) -> str:
    return format_table(
        rows, title=f"Dual-tree vs grouped, plummer, theta={THETA}, "
                    f"group_size={GROUP_SIZE}, cc_mac={CC_MAC}, "
                    f"order={ORDER} (modeled on {DEVICE})")


def _check(rows: list[dict], *, min_inter: float | None,
           min_model: float | None) -> int:
    status = 0
    by = {r["mode"]: r for r in rows}
    eg, ed = (by[m]["rel_l2_vs_pairwise"] for m in ("grouped", "dual"))
    if not ed < 0.12 * THETA:
        print(f"FAIL: dual error {ed:.3g} exceeds theta bound")
        status = 1
    if not ed <= max(3.0 * eg, 1e-9):
        print(f"FAIL: dual error {ed:.3g} > 3x grouped ({eg:.3g})")
        status = 1
    d = by["dual"]
    if min_inter is not None and d["interaction_ratio"] < min_inter:
        print(f"FAIL: interaction ratio {d['interaction_ratio']:.2f}x "
              f"< required {min_inter}x")
        status = 1
    if min_model is not None and d["model_force_ratio"] < min_model:
        print(f"FAIL: modeled force ratio {d['model_force_ratio']:.2f}x "
              f"< required {min_model}x")
        status = 1
    return status


def run(sizes: list[int], *, reps: int, min_inter: float | None,
        min_model: float | None, gate_n: int) -> int:
    all_rows: list[dict] = []
    status = 0
    for n in sizes:
        rows = sweep(n, reps=reps)
        print(_report(rows))
        gate = n >= gate_n
        status |= _check(rows, min_inter=min_inter if gate else None,
                         min_model=min_model if gate else None)
        all_rows += rows
    path = write_bench_json("dual_tree", _records(all_rows),
                            out_dir=RESULTS_DIR,
                            meta={"theta": THETA, "group_size": GROUP_SIZE,
                                  "cc_mac": CC_MAC, "expansion_order": ORDER,
                                  "device": DEVICE, "reps": reps})
    print(f"[saved to {path}]")
    if status == 0 and min_inter is not None:
        d = [r for r in all_rows
             if r["mode"] == "dual" and r["n"] >= gate_n][-1]
        print(f"OK: dual {d['interaction_ratio']:.2f}x fewer interactions, "
              f"{d['model_force_ratio']:.2f}x modeled force time at "
              f"N={d['n']}")
    return status


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="small, fast run (no ratio floor; CI sanity check)")
    ap.add_argument("--n", type=int, default=None)
    ap.add_argument("--reps", type=int, default=None)
    args = ap.parse_args(argv)
    if args.smoke:
        # No model-ratio floor at toy sizes: the downsweep's fixed
        # per-level launch cost dominates until the far field is large.
        n = args.n or 2000
        return run([n], reps=args.reps or 1, min_inter=1.0, min_model=None,
                   gate_n=0)
    sizes = [args.n] if args.n else [10_000, 100_000]
    return run(sizes, reps=args.reps or 2, min_inter=3.0, min_model=1.5,
               gate_n=100_000 if not args.n else args.n)


try:
    import pytest
except ImportError:  # pragma: no cover - pytest always present in CI
    pytest = None

if pytest is not None:

    @pytest.mark.benchmark(group="traversal")
    def test_dual_tree_smoke(benchmark, emit, results_dir):
        rows = benchmark.pedantic(lambda: sweep(2000, reps=1),
                                  rounds=1, iterations=1)
        emit("dual_tree_smoke", _report(rows))
        write_bench_json("dual_tree", _records(rows), out_dir=results_dir,
                         meta={"theta": THETA, "group_size": GROUP_SIZE,
                               "cc_mac": CC_MAC, "expansion_order": ORDER,
                               "device": DEVICE, "smoke": True})
        assert _check(rows, min_inter=1.0, min_model=None) == 0


if __name__ == "__main__":
    sys.exit(main())
